//! File loading with format autodetection.
//!
//! Downstream tools (and the `srna` CLI) accept structures in any of the
//! three supported formats; this module centralizes extension- and
//! content-based detection so every consumer resolves formats the same
//! way.

use std::path::Path;

use crate::error::StructureError;
use crate::formats::{bpseq, ct, dot_bracket};
use crate::sequence::Sequence;
use crate::structure::ArcStructure;

/// A structure file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Dot-bracket notation (`.db`, `.dbn`, `.dot`).
    DotBracket,
    /// Connectivity table (`.ct`).
    Ct,
    /// BPSEQ three-column format (`.bpseq`).
    Bpseq,
}

impl Format {
    /// Resolves a format from a file extension (case-insensitive).
    pub fn from_extension(ext: &str) -> Option<Format> {
        match ext.to_ascii_lowercase().as_str() {
            "db" | "dbn" | "dot" => Some(Format::DotBracket),
            "ct" => Some(Format::Ct),
            "bpseq" => Some(Format::Bpseq),
            _ => None,
        }
    }

    /// Resolves a format from a user-supplied name (`db`, `ct`, `bpseq`).
    pub fn from_name(name: &str) -> Option<Format> {
        Format::from_extension(name)
    }

    /// Guesses the format from file content: dot-bracket lines consist
    /// of bracket/dot characters; CT starts with a length header; BPSEQ
    /// lines have exactly three columns with a numeric first and third.
    pub fn sniff(content: &str) -> Format {
        let first = content
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .unwrap_or("");
        let cols: Vec<&str> = first.split_whitespace().collect();
        if !first.is_empty()
            && first
                .chars()
                .all(|c| matches!(c, '(' | ')' | '.' | '-' | ':' | ',') || c.is_whitespace())
        {
            return Format::DotBracket;
        }
        if cols.len() == 3 && cols[0].parse::<u32>().is_ok() && cols[2].parse::<u32>().is_ok() {
            return Format::Bpseq;
        }
        // CT: header is "<len> <title...>" followed by 6-column rows.
        Format::Ct
    }
}

/// A loaded structure with optional sequence and title metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loaded {
    /// The validated structure.
    pub structure: ArcStructure,
    /// The sequence, when the format records one (CT, BPSEQ).
    pub sequence: Option<Sequence>,
    /// The title, when the format records one (CT).
    pub title: Option<String>,
    /// The format the content was parsed as.
    pub format: Format,
}

/// Parses `content` as `format`.
pub fn parse_as(content: &str, format: Format) -> Result<Loaded, StructureError> {
    match format {
        Format::DotBracket => Ok(Loaded {
            structure: dot_bracket::parse(content)?,
            sequence: None,
            title: None,
            format,
        }),
        Format::Ct => {
            let rec = ct::parse(content)?;
            Ok(Loaded {
                structure: rec.structure,
                sequence: Some(rec.sequence),
                title: Some(rec.title),
                format,
            })
        }
        Format::Bpseq => {
            let rec = bpseq::parse(content)?;
            Ok(Loaded {
                structure: rec.structure,
                sequence: Some(rec.sequence),
                title: None,
                format,
            })
        }
    }
}

/// Parses `content`, resolving the format from (in priority order) the
/// caller's override, the path's extension, then content sniffing.
pub fn parse_auto(
    content: &str,
    path: Option<&Path>,
    forced: Option<Format>,
) -> Result<Loaded, StructureError> {
    let format = forced
        .or_else(|| {
            path.and_then(|p| p.extension())
                .and_then(|e| Format::from_extension(&e.to_string_lossy()))
        })
        .unwrap_or_else(|| Format::sniff(content));
    parse_as(content, format)
}

/// Reads and parses a structure file (format from extension, falling
/// back to content sniffing). I/O errors are reported as parse errors
/// with the message text.
pub fn load_path(path: impl AsRef<Path>, forced: Option<Format>) -> Result<Loaded, StructureError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path)
        .map_err(|e| StructureError::parse(0, format!("{}: {e}", path.display())))?;
    parse_auto(&content, Some(path), forced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_resolution() {
        assert_eq!(Format::from_extension("DB"), Some(Format::DotBracket));
        assert_eq!(Format::from_extension("ct"), Some(Format::Ct));
        assert_eq!(Format::from_extension("bpseq"), Some(Format::Bpseq));
        assert_eq!(Format::from_extension("txt"), None);
    }

    #[test]
    fn sniff_dot_bracket() {
        assert_eq!(Format::sniff("((..))\n"), Format::DotBracket);
        assert_eq!(Format::sniff("# comment\n(.)\n"), Format::DotBracket);
    }

    #[test]
    fn sniff_bpseq() {
        assert_eq!(Format::sniff("1 G 5\n2 A 0\n"), Format::Bpseq);
    }

    #[test]
    fn sniff_ct() {
        assert_eq!(Format::sniff("5 my title\n1 G 0 2 5 1\n"), Format::Ct);
    }

    #[test]
    fn parse_auto_prefers_forced_format() {
        // Content sniffs as BPSEQ, but the caller forces... BPSEQ is the
        // only valid reading here; check forcing dot-bracket errors.
        let content = "1 G 3\n2 A 0\n3 C 1\n";
        assert!(parse_auto(content, None, Some(Format::DotBracket)).is_err());
        let ok = parse_auto(content, None, None).unwrap();
        assert_eq!(ok.format, Format::Bpseq);
        assert_eq!(ok.structure.num_arcs(), 1);
        assert_eq!(ok.sequence.as_ref().unwrap().to_string(), "GAC");
    }

    #[test]
    fn parse_auto_uses_extension() {
        let content = "((.))";
        let got = parse_auto(content, Some(Path::new("x.dbn")), None).unwrap();
        assert_eq!(got.format, Format::DotBracket);
        assert_eq!(got.structure.num_arcs(), 2);
    }

    #[test]
    fn load_path_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("rna_io_test.db");
        std::fs::write(&path, "((..))\n").unwrap();
        let got = load_path(&path, None).unwrap();
        assert_eq!(got.structure.num_arcs(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_path_missing_file_errors() {
        let e = load_path("/nonexistent/definitely/missing.db", None).unwrap_err();
        assert!(matches!(e, StructureError::Parse { .. }));
    }
}

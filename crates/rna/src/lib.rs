//! Arc-annotated RNA secondary structures.
//!
//! This crate is the input model for the MCOS (Maximum Common Ordered
//! Substructure) algorithms: it defines RNA sequences over `{A, C, G, U}`,
//! arc-annotated secondary structures restricted to the **non-pseudoknot**
//! model (arcs may be nested or sequential, never crossing, and never share
//! an endpoint), text formats for reading and writing structures, and a
//! family of deterministic structure generators used by the experiment
//! harness (contrived worst-case data, hairpin chains, random non-crossing
//! structures, and rRNA-like structures).
//!
//! # The model
//!
//! A structure over a sequence of `n` positions is a set of *arcs*
//! `(l, r)` with `0 <= l < r < n`. The non-pseudoknot restriction means any
//! two arcs are either *disjoint* (`r1 < l2`), or *nested*
//! (`l1 < l2 < r2 < r1`); crossing arcs (`l1 < l2 < r1 < r2`) and shared
//! endpoints are rejected at construction time, so every [`ArcStructure`]
//! value is valid by construction.
//!
//! # Quick example
//!
//! ```
//! use rna_structure::{ArcStructure, formats::dot_bracket};
//!
//! // A hairpin with three nested arcs: positions 0-9.
//! let s = dot_bracket::parse("(((...)))" ).unwrap();
//! assert_eq!(s.len(), 9);
//! assert_eq!(s.num_arcs(), 3);
//! assert_eq!(s.max_depth(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod draw;
pub mod error;
pub mod forest;
pub mod formats;
pub mod generate;
pub mod io;
pub mod molecule;
pub mod mutate;
pub mod sequence;
pub mod stats;
pub mod structure;

pub use arc::Arc;
pub use error::StructureError;
pub use sequence::{Base, Sequence};
pub use structure::ArcStructure;

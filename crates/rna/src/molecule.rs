//! [`RnaMolecule`]: a sequence and its secondary structure, validated
//! together.
//!
//! The MCOS recurrence itself never looks at bases, but real inputs come
//! as (sequence, structure) pairs and the weighted similarity model needs
//! both. `RnaMolecule` enforces the biophysical consistency the text
//! formats imply: equal lengths, and every arc pairing bases that can
//! actually bond (Watson–Crick or G·U wobble).

use std::fmt;

use crate::error::StructureError;
use crate::sequence::Sequence;
use crate::structure::ArcStructure;

/// A sequence/structure pair whose arcs all join pairable bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnaMolecule {
    name: String,
    sequence: Sequence,
    structure: ArcStructure,
}

/// Why a sequence and structure cannot form a molecule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoleculeError {
    /// Sequence and structure lengths differ.
    LengthMismatch {
        /// Number of bases in the sequence.
        sequence: usize,
        /// Number of positions in the structure.
        structure: u32,
    },
    /// An arc joins two bases that cannot pair.
    UnpairableBases {
        /// Left position of the offending arc.
        left: u32,
        /// Right position of the offending arc.
        right: u32,
        /// The two base characters.
        bases: (char, char),
    },
    /// The structure itself is invalid.
    Structure(StructureError),
}

impl fmt::Display for MoleculeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoleculeError::LengthMismatch {
                sequence,
                structure,
            } => write!(
                f,
                "sequence has {sequence} bases but structure has {structure} positions"
            ),
            MoleculeError::UnpairableBases { left, right, bases } => write!(
                f,
                "arc ({left},{right}) pairs {} with {}, which cannot bond",
                bases.0, bases.1
            ),
            MoleculeError::Structure(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MoleculeError {}

impl From<StructureError> for MoleculeError {
    fn from(e: StructureError) -> Self {
        MoleculeError::Structure(e)
    }
}

impl RnaMolecule {
    /// Validates and bundles a sequence with its structure.
    pub fn new(
        name: impl Into<String>,
        sequence: Sequence,
        structure: ArcStructure,
    ) -> Result<Self, MoleculeError> {
        if sequence.len() != structure.len() as usize {
            return Err(MoleculeError::LengthMismatch {
                sequence: sequence.len(),
                structure: structure.len(),
            });
        }
        for arc in structure.arcs() {
            let a = sequence.base(arc.left as usize);
            let b = sequence.base(arc.right as usize);
            if !a.can_pair(b) {
                return Err(MoleculeError::UnpairableBases {
                    left: arc.left,
                    right: arc.right,
                    bases: (a.to_char(), b.to_char()),
                });
            }
        }
        Ok(RnaMolecule {
            name: name.into(),
            sequence,
            structure,
        })
    }

    /// The molecule's name (free text; often the accession).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base sequence.
    pub fn sequence(&self) -> &Sequence {
        &self.sequence
    }

    /// The secondary structure.
    pub fn structure(&self) -> &ArcStructure {
        &self.structure
    }

    /// Fraction of arcs that are G-C pairs (the thermodynamically
    /// strongest); 0.0 for arcless molecules.
    pub fn gc_pair_fraction(&self) -> f64 {
        let arcs = self.structure.arcs();
        if arcs.is_empty() {
            return 0.0;
        }
        let gc = arcs
            .iter()
            .filter(|a| {
                let x = self.sequence.base(a.left as usize);
                let y = self.sequence.base(a.right as usize);
                matches!((x.to_char(), y.to_char()), ('G', 'C') | ('C', 'G'))
            })
            .count();
        gc as f64 / arcs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::dot_bracket;
    use crate::generate;

    #[test]
    fn accepts_consistent_pair() {
        let s = dot_bracket::parse("((..))").unwrap();
        let q: Sequence = "GGAACC".parse().unwrap();
        let m = RnaMolecule::new("test", q, s).unwrap();
        assert_eq!(m.name(), "test");
        assert_eq!(m.structure().num_arcs(), 2);
        assert!((m.gc_pair_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accepts_wobble_pairs() {
        let s = dot_bracket::parse("(.)").unwrap();
        let q: Sequence = "GAU".parse().unwrap();
        assert!(RnaMolecule::new("w", q, s).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        let s = dot_bracket::parse("(.)").unwrap();
        let q: Sequence = "GAUC".parse().unwrap();
        assert!(matches!(
            RnaMolecule::new("x", q, s),
            Err(MoleculeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unpairable_bases() {
        let s = dot_bracket::parse("(.)").unwrap();
        let q: Sequence = "AAC".parse().unwrap();
        let e = RnaMolecule::new("x", q, s).unwrap_err();
        match e {
            MoleculeError::UnpairableBases { left, right, bases } => {
                assert_eq!((left, right), (0, 2));
                assert_eq!(bases, ('A', 'C'));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(e.to_string().contains("cannot bond"));
    }

    #[test]
    fn generated_molecules_are_always_consistent() {
        for seed in 0..10 {
            let s = generate::random_structure(80, 0.9, seed);
            let q = generate::sequence_for(&s, seed);
            assert!(RnaMolecule::new(format!("gen-{seed}"), q, s).is_ok());
        }
    }

    #[test]
    fn gc_fraction_of_mixed_molecule() {
        let s = dot_bracket::parse("(.)(.)").unwrap();
        let q: Sequence = "GACAUU".parse().unwrap(); // G-C and A-U pairs
        let m = RnaMolecule::new("m", q, s).unwrap();
        assert!((m.gc_pair_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arcless_molecule_gc_fraction_zero() {
        let s = crate::ArcStructure::unpaired(3);
        let q: Sequence = "AAA".parse().unwrap();
        let m = RnaMolecule::new("m", q, s).unwrap();
        assert_eq!(m.gc_pair_fraction(), 0.0);
    }
}

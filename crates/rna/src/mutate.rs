//! Structure perturbation: deterministic edit operations that produce
//! *related* structures from a template.
//!
//! Used to generate families of structures with a known degree of shared
//! architecture — the realistic workload for MCOS-based comparison
//! (homologous RNAs differ by local insertions, deletions and stem
//! rearrangements while sharing a global fold). Each operation preserves
//! validity by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arc::Arc;
use crate::structure::ArcStructure;

/// Removes the arcs at the given indices (positions stay; they become
/// unpaired). Out-of-range indices are ignored.
pub fn remove_arcs(s: &ArcStructure, indices: &[u32]) -> ArcStructure {
    let arcs = s
        .arcs()
        .iter()
        .enumerate()
        .filter(|(k, _)| !indices.contains(&(*k as u32)))
        .map(|(_, &a)| a);
    ArcStructure::new(s.len(), arcs).expect("removing arcs preserves validity")
}

/// Inserts a hairpin (a stem of `depth` arcs around `loop_len` unpaired
/// positions) at position `at`, shifting everything at or after `at`
/// rightwards.
///
/// # Panics
///
/// Panics if `at > s.len()` or `at` falls strictly inside an existing
/// arc's endpoint pair in a way that would be ambiguous — insertion is
/// positional, so any `at` in `0..=len` is actually fine and never
/// creates crossings (the new hairpin is contiguous).
pub fn insert_hairpin(s: &ArcStructure, at: u32, depth: u32, loop_len: u32) -> ArcStructure {
    assert!(at <= s.len(), "insertion point out of range");
    let ins = 2 * depth + loop_len;
    let shift = |p: u32| if p >= at { p + ins } else { p };
    let mut arcs: Vec<Arc> = s
        .arcs()
        .iter()
        .map(|a| Arc::new(shift(a.left), shift(a.right)))
        .collect();
    for d in 0..depth {
        arcs.push(Arc::new(at + d, at + ins - 1 - d));
    }
    ArcStructure::new(s.len() + ins, arcs).expect("contiguous insertion preserves validity")
}

/// Deletes the positions in `[from, to)` **and every arc with an
/// endpoint inside**, shifting later positions leftwards.
pub fn delete_span(s: &ArcStructure, from: u32, to: u32) -> ArcStructure {
    assert!(from <= to && to <= s.len(), "invalid span");
    let cut = to - from;
    let arcs = s
        .arcs()
        .iter()
        .filter(|a| !(a.left >= from && a.left < to || a.right >= from && a.right < to))
        .map(|a| {
            let adj = |p: u32| if p >= to { p - cut } else { p };
            Arc::new(adj(a.left), adj(a.right))
        });
    ArcStructure::new(s.len() - cut, arcs).expect("span deletion preserves validity")
}

/// Configuration for [`mutate`]: expected numbers of each edit.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Number of random arcs to remove.
    pub arc_removals: u32,
    /// Number of random hairpins to insert (depth 2–4, loop 3–6).
    pub hairpin_insertions: u32,
    /// Number of random short spans (3–8 positions) to delete.
    pub span_deletions: u32,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            arc_removals: 2,
            hairpin_insertions: 1,
            span_deletions: 1,
        }
    }
}

/// Applies a random batch of edits, deterministically per seed. The
/// result shares most of its architecture with the input — pairs of
/// mutants of the same template are the natural MCOS test family.
pub fn mutate(s: &ArcStructure, config: &MutationConfig, seed: u64) -> ArcStructure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = s.clone();
    for _ in 0..config.arc_removals {
        if out.num_arcs() == 0 {
            break;
        }
        let k = rng.gen_range(0..out.num_arcs());
        out = remove_arcs(&out, &[k]);
    }
    for _ in 0..config.span_deletions {
        if out.len() < 12 {
            break;
        }
        let span = rng.gen_range(3..=8u32).min(out.len());
        let from = rng.gen_range(0..=out.len() - span);
        out = delete_span(&out, from, from + span);
    }
    for _ in 0..config.hairpin_insertions {
        let at = rng.gen_range(0..=out.len());
        let depth = rng.gen_range(2..=4);
        let loop_len = rng.gen_range(3..=6);
        out = insert_hairpin(&out, at, depth, loop_len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::dot_bracket;
    use crate::generate;

    #[test]
    fn remove_arcs_keeps_positions() {
        let s = dot_bracket::parse("((.))").unwrap();
        let r = remove_arcs(&s, &[1]); // remove the outer arc (index 1)
        assert_eq!(r.len(), 5);
        assert_eq!(r.num_arcs(), 1);
        assert_eq!(dot_bracket::to_string(&r), ".(.).");
    }

    #[test]
    fn remove_arcs_ignores_out_of_range() {
        let s = dot_bracket::parse("(.)").unwrap();
        let r = remove_arcs(&s, &[99]);
        assert_eq!(r, s);
    }

    #[test]
    fn insert_hairpin_at_every_position_is_valid() {
        let s = dot_bracket::parse("((..)(..))").unwrap();
        for at in 0..=s.len() {
            let m = insert_hairpin(&s, at, 2, 3);
            assert_eq!(m.len(), s.len() + 7);
            assert_eq!(m.num_arcs(), s.num_arcs() + 2, "at={at}");
        }
    }

    #[test]
    fn insert_inside_a_loop_nests() {
        let s = dot_bracket::parse("(...)").unwrap();
        let m = insert_hairpin(&s, 2, 1, 1);
        assert_eq!(dot_bracket::to_string(&m), "(.(.)..)");
        assert_eq!(m.max_depth(), 2);
    }

    #[test]
    fn delete_span_drops_touched_arcs() {
        let s = dot_bracket::parse("(.)(.)(.)").unwrap();
        // Deleting [3,6) removes the middle hairpin entirely.
        let d = delete_span(&s, 3, 6);
        assert_eq!(dot_bracket::to_string(&d), "(.)(.)");
        // Deleting just the middle hairpin's left endpoint kills its arc
        // but keeps the right endpoint position (now unpaired).
        let d2 = delete_span(&s, 3, 4);
        assert_eq!(dot_bracket::to_string(&d2), "(.)..(.)");
    }

    #[test]
    fn delete_empty_span_is_identity() {
        let s = dot_bracket::parse("((.))").unwrap();
        assert_eq!(delete_span(&s, 2, 2), s);
    }

    #[test]
    #[should_panic(expected = "invalid span")]
    fn delete_rejects_inverted_span() {
        let s = dot_bracket::parse("(.)").unwrap();
        let _ = delete_span(&s, 2, 1);
    }

    #[test]
    fn mutate_is_deterministic_and_valid() {
        let base = generate::rrna_like(
            &generate::RrnaConfig {
                len: 300,
                arcs: 60,
                mean_stem: 6,
                nest_bias: 0.5,
            },
            1,
        );
        let cfg = MutationConfig::default();
        let a = mutate(&base, &cfg, 9);
        let b = mutate(&base, &cfg, 9);
        assert_eq!(a, b);
        let c = mutate(&base, &cfg, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn mutants_stay_similar_to_template() {
        // A light mutation keeps most arcs in common with the template
        // (measured by arc-count difference; the MCOS-level check lives
        // in the integration suite to avoid a dependency cycle).
        let base = generate::rrna_like(
            &generate::RrnaConfig {
                len: 240,
                arcs: 50,
                mean_stem: 6,
                nest_bias: 0.5,
            },
            2,
        );
        let m = mutate(&base, &MutationConfig::default(), 3);
        let diff = (m.num_arcs() as i64 - base.num_arcs() as i64).unsigned_abs();
        assert!(diff <= 12, "mutation changed too many arcs: {diff}");
    }

    #[test]
    fn mutate_handles_tiny_structures() {
        let s = dot_bracket::parse("(.)").unwrap();
        let m = mutate(
            &s,
            &MutationConfig {
                arc_removals: 5,
                hairpin_insertions: 1,
                span_deletions: 2,
            },
            0,
        );
        // Whatever happened, the result is valid (constructor enforced).
        assert!(!m.is_empty());
    }
}

//! RNA sequences over the four-letter alphabet `{A, C, G, U}`.
//!
//! The MCOS algorithms compare *bond structures* only — base identity never
//! enters the recurrence (the paper removes Bafna's weight functions) — but
//! realistic inputs carry sequences, the text formats record them, and the
//! generators emit complementary bases under every generated arc.

use std::fmt;
use std::str::FromStr;

/// One RNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Uracil.
    U,
}

impl Base {
    /// The Watson–Crick complement (`A↔U`, `C↔G`).
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::U,
            Base::U => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }

    /// Returns `true` if the two bases can pair in the canonical model
    /// (Watson–Crick pairs plus the G·U wobble pair).
    #[inline]
    pub fn can_pair(self, other: Base) -> bool {
        matches!(
            (self, other),
            (Base::A, Base::U)
                | (Base::U, Base::A)
                | (Base::C, Base::G)
                | (Base::G, Base::C)
                | (Base::G, Base::U)
                | (Base::U, Base::G)
        )
    }

    /// Parses one base character (case-insensitive; `T` is accepted as `U`).
    pub fn from_char(c: char) -> Option<Base> {
        match c.to_ascii_uppercase() {
            'A' => Some(Base::A),
            'C' => Some(Base::C),
            'G' => Some(Base::G),
            'U' | 'T' => Some(Base::U),
            _ => None,
        }
    }

    /// The canonical uppercase character for this base.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::U => 'U',
        }
    }

    /// All four bases, in alphabet order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::U];
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An owned RNA sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sequence {
    bases: Vec<Base>,
}

impl Sequence {
    /// Creates a sequence from a vector of bases.
    pub fn new(bases: Vec<Base>) -> Self {
        Sequence { bases }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Returns `true` if the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The bases as a slice.
    #[inline]
    pub fn bases(&self) -> &[Base] {
        &self.bases
    }

    /// The base at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    #[inline]
    pub fn base(&self, pos: usize) -> Base {
        self.bases[pos]
    }

    /// Mutable access to the underlying bases.
    #[inline]
    pub fn bases_mut(&mut self) -> &mut Vec<Base> {
        &mut self.bases
    }
}

impl FromStr for Sequence {
    type Err = char;

    /// Parses a sequence string; whitespace is ignored. Returns the first
    /// unrecognized character on error.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bases = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_whitespace() {
                continue;
            }
            match Base::from_char(c) {
                Some(b) => bases.push(b),
                None => return Err(c),
            }
        }
        Ok(Sequence { bases })
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for Sequence {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        Sequence {
            bases: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involutive() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn watson_crick_pairs() {
        assert!(Base::A.can_pair(Base::U));
        assert!(Base::G.can_pair(Base::C));
        assert!(Base::G.can_pair(Base::U), "wobble pair");
        assert!(!Base::A.can_pair(Base::G));
        assert!(!Base::A.can_pair(Base::A));
        assert!(!Base::C.can_pair(Base::U));
    }

    #[test]
    fn parse_round_trip() {
        let s: Sequence = "ACGUacgu".parse().unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_string(), "ACGUACGU");
    }

    #[test]
    fn parse_accepts_t_as_u() {
        let s: Sequence = "ACGT".parse().unwrap();
        assert_eq!(s.base(3), Base::U);
    }

    #[test]
    fn parse_skips_whitespace() {
        let s: Sequence = "AC GU\nAC".parse().unwrap();
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn parse_rejects_unknown() {
        let e = "ACXGU".parse::<Sequence>().unwrap_err();
        assert_eq!(e, 'X');
    }

    #[test]
    fn from_iterator_collects() {
        let s: Sequence = Base::ALL.into_iter().collect();
        assert_eq!(s.to_string(), "ACGU");
    }
}

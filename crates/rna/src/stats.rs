//! Descriptive statistics for secondary structures.
//!
//! These are used by the experiment harness to report the shape of inputs
//! (arc density, nesting depth, stem organization) alongside timing
//! results, and by tests to assert the generators produce structures with
//! the intended character.

use crate::structure::ArcStructure;

/// Summary statistics of a secondary structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureStats {
    /// Sequence length.
    pub len: u32,
    /// Number of arcs.
    pub arcs: u32,
    /// Fraction of positions that are arc endpoints (`2*arcs/len`).
    pub paired_fraction: f64,
    /// Maximum nesting depth.
    pub max_depth: u32,
    /// Mean nesting depth over arcs (1-based: an outermost arc counts 1).
    pub mean_depth: f64,
    /// Number of stems (maximal runs of directly nested arcs with no
    /// branching or unpaired interruption).
    pub stems: u32,
    /// Length of the longest stem.
    pub longest_stem: u32,
    /// Number of top-level arcs (depth 0).
    pub top_level_arcs: u32,
}

/// Computes [`StructureStats`] for a structure.
pub fn stats(s: &ArcStructure) -> StructureStats {
    let depths = s.arc_depths();
    let parents = s.arc_parents();
    let n_arcs = s.num_arcs();

    // Stem detection: arc B continues arc A's stem when B is the unique
    // child of A and is "snug" (B.left == A.left + 1 and B.right ==
    // A.right - 1). Count maximal runs.
    let mut child_count = vec![0u32; n_arcs as usize];
    for p in parents.iter().flatten() {
        child_count[*p as usize] += 1;
    }
    let mut stems = 0u32;
    let mut longest = 0u32;
    for k in 0..n_arcs {
        // A stem starts at an arc whose parent does not continue into it.
        let starts_stem = match parents[k as usize] {
            None => true,
            Some(p) => {
                let pa = s.arc(p);
                let ka = s.arc(k);
                !(child_count[p as usize] == 1
                    && ka.left == pa.left + 1
                    && ka.right == pa.right - 1)
            }
        };
        if !starts_stem {
            continue;
        }
        stems += 1;
        // Walk the run downward.
        let mut len_run = 1u32;
        let mut cur = k;
        loop {
            let ca = s.arc(cur);
            // The unique snug child, if any.
            if child_count[cur as usize] != 1 {
                break;
            }
            let child = (0..n_arcs)
                .find(|&c| parents[c as usize] == Some(cur))
                .expect("child_count says there is one child");
            let ch = s.arc(child);
            if ch.left == ca.left + 1 && ch.right == ca.right - 1 {
                len_run += 1;
                cur = child;
            } else {
                break;
            }
        }
        longest = longest.max(len_run);
    }

    StructureStats {
        len: s.len(),
        arcs: n_arcs,
        paired_fraction: if s.is_empty() {
            0.0
        } else {
            (2 * n_arcs) as f64 / s.len() as f64
        },
        max_depth: s.max_depth(),
        mean_depth: if n_arcs == 0 {
            0.0
        } else {
            depths.iter().map(|&d| (d + 1) as f64).sum::<f64>() / n_arcs as f64
        },
        stems,
        longest_stem: longest,
        top_level_arcs: depths.iter().filter(|&&d| d == 0).count() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn worst_case_is_one_long_stem() {
        let s = generate::worst_case_nested(10);
        let st = stats(&s);
        assert_eq!(st.arcs, 10);
        assert_eq!(st.max_depth, 10);
        assert_eq!(st.stems, 1);
        assert_eq!(st.longest_stem, 10);
        assert_eq!(st.top_level_arcs, 1);
        assert!((st.paired_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hairpin_chain_stems() {
        let s = generate::hairpin_chain(4, 3, 5);
        let st = stats(&s);
        assert_eq!(st.stems, 4);
        assert_eq!(st.longest_stem, 3);
        assert_eq!(st.top_level_arcs, 4);
        assert_eq!(st.max_depth, 3);
    }

    #[test]
    fn empty_structure_stats() {
        let st = stats(&ArcStructure::unpaired(10));
        assert_eq!(st.arcs, 0);
        assert_eq!(st.stems, 0);
        assert_eq!(st.paired_fraction, 0.0);
        assert_eq!(st.mean_depth, 0.0);
    }

    #[test]
    fn branching_breaks_stems() {
        // Outer arc with two sequential hairpins inside: 3 stems.
        use crate::formats::dot_bracket;
        let s = dot_bracket::parse("((..)(..))").unwrap();
        let st = stats(&s);
        assert_eq!(st.stems, 3);
        assert_eq!(st.top_level_arcs, 1);
    }

    #[test]
    fn rrna_like_has_many_stems() {
        let cfg = generate::RrnaConfig {
            len: 1000,
            arcs: 180,
            mean_stem: 6,
            nest_bias: 0.55,
        };
        let s = generate::rrna_like(&cfg, 11);
        let st = stats(&s);
        assert!(st.stems > 10, "expected many stems, got {}", st.stems);
        assert!(st.longest_stem >= 3);
        assert!(st.max_depth < st.arcs, "not one giant nest");
    }
}

//! [`ArcStructure`]: a validated non-pseudoknot secondary structure.

use std::fmt;

use crate::arc::Arc;
use crate::error::StructureError;

/// Sentinel for "no arc / no partner" in the position-indexed tables.
const NONE: u32 = u32::MAX;

/// A validated arc-annotated secondary structure over `len` positions.
///
/// Invariants (checked by [`ArcStructure::new`], so every value of this type
/// satisfies them):
///
/// * every arc `(l, r)` has `l < r < len`;
/// * no two arcs share an endpoint (each base is linked at most once);
/// * no two arcs cross — any two arcs are nested or disjoint.
///
/// Arcs are stored sorted by **increasing right endpoint**, which is the
/// traversal order of the SRNA algorithms (the order in which arc endpoints
/// are encountered while scanning the sequence left to right). Because
/// endpoints are unique, this order is strict, and the index of an arc in
/// [`ArcStructure::arcs`] is a stable identifier used throughout the MCOS
/// crates ("arc index").
#[derive(Clone, PartialEq, Eq)]
pub struct ArcStructure {
    len: u32,
    /// Arcs sorted by increasing right endpoint.
    arcs: Vec<Arc>,
    /// `partner[p]` is the position paired with `p`, or `NONE`.
    partner: Vec<u32>,
    /// `ending_at[p]` is the arc index whose right endpoint is `p`, or `NONE`.
    ending_at: Vec<u32>,
    /// `starting_at[p]` is the arc index whose left endpoint is `p`, or `NONE`.
    starting_at: Vec<u32>,
}

impl ArcStructure {
    /// Builds a structure over `len` positions from a set of arcs,
    /// validating the non-pseudoknot model.
    pub fn new(len: u32, arcs: impl IntoIterator<Item = Arc>) -> Result<Self, StructureError> {
        let mut arcs: Vec<Arc> = arcs.into_iter().collect();
        arcs.sort_by_key(|a| a.right);

        let n = len as usize;
        let mut partner = vec![NONE; n];
        let mut ending_at = vec![NONE; n];
        let mut starting_at = vec![NONE; n];

        for (idx, arc) in arcs.iter().enumerate() {
            if arc.right >= len {
                return Err(StructureError::OutOfBounds { arc: *arc, len });
            }
            for pos in [arc.left, arc.right] {
                if partner[pos as usize] != NONE {
                    // Distinguish an exact duplicate from a shared endpoint.
                    let other = arcs[..idx]
                        .iter()
                        .find(|o| o.left == pos || o.right == pos)
                        .copied();
                    if other == Some(*arc) {
                        return Err(StructureError::DuplicateArc { arc: *arc });
                    }
                    return Err(StructureError::SharedEndpoint { position: pos });
                }
            }
            partner[arc.left as usize] = arc.right;
            partner[arc.right as usize] = arc.left;
            ending_at[arc.right as usize] = idx as u32;
            starting_at[arc.left as usize] = idx as u32;
        }

        // Non-crossing check: a left-to-right sweep with a stack of open
        // arcs. Closing an arc whose partner is not the innermost open arc
        // means two arcs cross.
        let mut stack: Vec<u32> = Vec::new(); // left endpoints of open arcs
        for pos in 0..len {
            let p = partner[pos as usize];
            if p == NONE {
                continue;
            }
            if p > pos {
                stack.push(pos);
            } else {
                // `pos` closes the arc (p, pos).
                match stack.pop() {
                    Some(top) if top == p => {}
                    Some(top) => {
                        return Err(StructureError::CrossingArcs {
                            first: Arc::new(top, partner[top as usize]),
                            second: Arc::new(p, pos),
                        });
                    }
                    None => unreachable!("closing endpoint without any open arc"),
                }
            }
        }

        Ok(ArcStructure {
            len,
            arcs,
            partner,
            ending_at,
            starting_at,
        })
    }

    /// A structure with no arcs.
    pub fn unpaired(len: u32) -> Self {
        ArcStructure::new(len, std::iter::empty()).expect("empty structure is always valid")
    }

    /// Sequence length (number of positions).
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` if the structure has zero positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> u32 {
        self.arcs.len() as u32
    }

    /// All arcs, sorted by increasing right endpoint.
    #[inline]
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// The arc with the given index (indices follow right-endpoint order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn arc(&self, idx: u32) -> Arc {
        self.arcs[idx as usize]
    }

    /// The partner of position `pos`, if it is an arc endpoint.
    #[inline]
    pub fn partner_of(&self, pos: u32) -> Option<u32> {
        match self.partner[pos as usize] {
            NONE => None,
            p => Some(p),
        }
    }

    /// Index of the arc whose **right** endpoint is `pos`, if any.
    #[inline]
    pub fn arc_ending_at(&self, pos: u32) -> Option<u32> {
        match self.ending_at[pos as usize] {
            NONE => None,
            i => Some(i),
        }
    }

    /// Index of the arc whose **left** endpoint is `pos`, if any.
    #[inline]
    pub fn arc_starting_at(&self, pos: u32) -> Option<u32> {
        match self.starting_at[pos as usize] {
            NONE => None,
            i => Some(i),
        }
    }

    /// Indices of the arcs fully contained in the closed window `[i, j]`
    /// (both endpoints inside), in increasing right-endpoint order.
    ///
    /// Returns an empty vector for inverted windows (`j < i`), which arise
    /// as the empty intervals under innermost arcs.
    pub fn arcs_in_window(&self, i: u32, j: u32) -> Vec<u32> {
        if j < i || self.arcs.is_empty() {
            return Vec::new();
        }
        // Arcs are sorted by right endpoint: binary-search the range of
        // right endpoints in [i, j], then filter on the left endpoint.
        let lo = self.arcs.partition_point(|a| a.right < i);
        let hi = self.arcs.partition_point(|a| a.right <= j);
        (lo..hi)
            .filter(|&k| self.arcs[k].left >= i)
            .map(|k| k as u32)
            .collect()
    }

    /// Indices of the arcs strictly nested under arc `idx`, in increasing
    /// right-endpoint order.
    pub fn arcs_under(&self, idx: u32) -> Vec<u32> {
        let a = self.arc(idx);
        if a.span() == 0 {
            return Vec::new();
        }
        self.arcs_in_window(a.left + 1, a.right - 1)
    }

    /// Number of arcs strictly nested under arc `idx`.
    ///
    /// This is the work driver of the MCOS child slices: tabulating the
    /// child slice spawned by matching arcs `(a, b)` costs
    /// `arcs_under(a) * arcs_under(b)` subproblems.
    pub fn arcs_under_count(&self, idx: u32) -> u32 {
        self.arcs_under(idx).len() as u32
    }

    /// Nesting depth of every arc: `depth[k]` is the number of arcs strictly
    /// enclosing arc `k` (outermost arcs have depth 0).
    pub fn arc_depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.arcs.len()];
        let mut stack: Vec<u32> = Vec::new();
        for pos in 0..self.len {
            if let Some(idx) = self.arc_starting_at(pos) {
                depth[idx as usize] = stack.len() as u32;
                stack.push(idx);
            }
            if let Some(idx) = self.arc_ending_at(pos) {
                debug_assert_eq!(stack.last(), Some(&idx));
                stack.pop();
            }
        }
        depth
    }

    /// Maximum nesting depth (0 for a structure with no arcs; a single arc
    /// has depth 1).
    pub fn max_depth(&self) -> u32 {
        self.arc_depths().iter().map(|d| d + 1).max().unwrap_or(0)
    }

    /// Parent arc index of each arc (the innermost arc strictly enclosing
    /// it), or `None` for top-level arcs.
    pub fn arc_parents(&self) -> Vec<Option<u32>> {
        let mut parent = vec![None; self.arcs.len()];
        let mut stack: Vec<u32> = Vec::new();
        for pos in 0..self.len {
            if let Some(idx) = self.arc_starting_at(pos) {
                parent[idx as usize] = stack.last().copied();
                stack.push(idx);
            }
            if self.arc_ending_at(pos).is_some() {
                stack.pop();
            }
        }
        parent
    }

    /// Concatenates two structures: the result has `self.len() + other.len()`
    /// positions with `other`'s arcs shifted past the end of `self`.
    pub fn concat(&self, other: &ArcStructure) -> ArcStructure {
        let arcs = self
            .arcs
            .iter()
            .copied()
            .chain(other.arcs.iter().map(|a| a.shifted(self.len)));
        ArcStructure::new(self.len + other.len, arcs)
            .expect("concatenation of valid structures is valid")
    }

    /// Wraps the structure under one new enclosing arc: the result has
    /// `len + 2` positions, an arc `(0, len + 1)`, and all existing arcs
    /// shifted right by one.
    pub fn enclosed(&self) -> ArcStructure {
        let arcs = std::iter::once(Arc::new(0, self.len + 1))
            .chain(self.arcs.iter().map(|a| a.shifted(1)));
        ArcStructure::new(self.len + 2, arcs).expect("enclosing a valid structure is valid")
    }
}

impl fmt::Debug for ArcStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArcStructure(len={}, arcs=[", self.len)?;
        for (k, a) in self.arcs.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arcs(pairs: &[(u32, u32)]) -> Vec<Arc> {
        pairs.iter().map(|&(a, b)| Arc::new(a, b)).collect()
    }

    #[test]
    fn paper_figure_1_structure_is_valid() {
        // Figure 1 of the paper: arcs (0,19), (1,8), (9,18) — one outer arc
        // with a sequential pair underneath.
        let s = ArcStructure::new(20, arcs(&[(0, 19), (1, 8), (9, 18)])).unwrap();
        assert_eq!(s.num_arcs(), 3);
        // Sorted by right endpoint: (1,8), (9,18), (0,19).
        assert_eq!(s.arc(0), Arc::new(1, 8));
        assert_eq!(s.arc(1), Arc::new(9, 18));
        assert_eq!(s.arc(2), Arc::new(0, 19));
        assert_eq!(s.max_depth(), 2);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let e = ArcStructure::new(5, arcs(&[(0, 5)])).unwrap_err();
        assert!(matches!(e, StructureError::OutOfBounds { .. }));
    }

    #[test]
    fn rejects_shared_endpoint() {
        let e = ArcStructure::new(6, arcs(&[(0, 3), (3, 5)])).unwrap_err();
        assert_eq!(e, StructureError::SharedEndpoint { position: 3 });
    }

    #[test]
    fn rejects_duplicate_arc() {
        let e = ArcStructure::new(6, arcs(&[(0, 3), (0, 3)])).unwrap_err();
        assert_eq!(
            e,
            StructureError::DuplicateArc {
                arc: Arc::new(0, 3)
            }
        );
    }

    #[test]
    fn rejects_crossing_arcs() {
        let e = ArcStructure::new(10, arcs(&[(0, 5), (3, 8)])).unwrap_err();
        match e {
            StructureError::CrossingArcs { first, second } => {
                let mut pair = [first, second];
                pair.sort();
                assert_eq!(pair, [Arc::new(0, 5), Arc::new(3, 8)]);
            }
            other => panic!("expected CrossingArcs, got {other:?}"),
        }
    }

    #[test]
    fn accepts_nested_and_sequential() {
        let s = ArcStructure::new(12, arcs(&[(0, 11), (1, 5), (6, 10), (2, 4), (7, 9)])).unwrap();
        assert_eq!(s.num_arcs(), 5);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn partner_and_endpoint_lookup() {
        let s = ArcStructure::new(10, arcs(&[(1, 8), (2, 7)])).unwrap();
        assert_eq!(s.partner_of(1), Some(8));
        assert_eq!(s.partner_of(8), Some(1));
        assert_eq!(s.partner_of(0), None);
        assert_eq!(s.arc_ending_at(7), Some(0)); // (2,7) has smaller right endpoint
        assert_eq!(s.arc_ending_at(8), Some(1));
        assert_eq!(s.arc_ending_at(3), None);
        assert_eq!(s.arc_starting_at(2), Some(0));
        assert_eq!(s.arc_starting_at(1), Some(1));
    }

    #[test]
    fn arcs_in_window_filters_both_endpoints() {
        let s = ArcStructure::new(12, arcs(&[(0, 11), (1, 5), (6, 10), (2, 4)])).unwrap();
        // Window [1,5]: arcs (1,5) and (2,4) only.
        let w = s.arcs_in_window(1, 5);
        let got: Vec<Arc> = w.iter().map(|&k| s.arc(k)).collect();
        assert_eq!(got, vec![Arc::new(2, 4), Arc::new(1, 5)]);
        // Window [1,10]: excludes the outer (0,11).
        assert_eq!(s.arcs_in_window(1, 10).len(), 3);
        // Inverted window is empty.
        assert!(s.arcs_in_window(5, 4).is_empty());
    }

    #[test]
    fn arcs_under_counts_nested_arcs() {
        let s = ArcStructure::new(12, arcs(&[(0, 11), (1, 5), (6, 10), (2, 4)])).unwrap();
        // Arc (0,11) is the last index (largest right endpoint).
        let outer = s.arc_ending_at(11).unwrap();
        assert_eq!(s.arcs_under_count(outer), 3);
        let inner = s.arc_ending_at(4).unwrap();
        assert_eq!(s.arcs_under_count(inner), 0);
    }

    #[test]
    fn depths_and_parents() {
        let s = ArcStructure::new(12, arcs(&[(0, 11), (1, 5), (6, 10), (2, 4)])).unwrap();
        let depths = s.arc_depths();
        let parents = s.arc_parents();
        let idx_outer = s.arc_ending_at(11).unwrap() as usize;
        let idx_15 = s.arc_ending_at(5).unwrap() as usize;
        let idx_24 = s.arc_ending_at(4).unwrap() as usize;
        assert_eq!(depths[idx_outer], 0);
        assert_eq!(depths[idx_15], 1);
        assert_eq!(depths[idx_24], 2);
        assert_eq!(parents[idx_outer], None);
        assert_eq!(parents[idx_24], Some(idx_15 as u32));
    }

    #[test]
    fn unpaired_structure() {
        let s = ArcStructure::unpaired(7);
        assert_eq!(s.len(), 7);
        assert_eq!(s.num_arcs(), 0);
        assert_eq!(s.max_depth(), 0);
    }

    #[test]
    fn concat_shifts_second_structure() {
        let a = ArcStructure::new(4, arcs(&[(0, 3)])).unwrap();
        let b = ArcStructure::new(4, arcs(&[(1, 2)])).unwrap();
        let c = a.concat(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(c.arcs(), &[Arc::new(0, 3), Arc::new(5, 6)]);
    }

    #[test]
    fn enclosed_wraps_structure() {
        let a = ArcStructure::new(4, arcs(&[(1, 2)])).unwrap();
        let e = a.enclosed();
        assert_eq!(e.len(), 6);
        assert_eq!(e.arcs(), &[Arc::new(2, 3), Arc::new(0, 5)]);
        assert_eq!(e.max_depth(), 2);
    }

    #[test]
    fn zero_length_structure() {
        let s = ArcStructure::unpaired(0);
        assert!(s.is_empty());
        assert!(s.arcs_in_window(0, 0).is_empty());
    }
}

//! Property tests over the structure model: every generator output obeys
//! the non-pseudoknot invariants, the forest view is consistent with the
//! flat view, statistics are internally consistent, and mutation
//! operators preserve validity.

use proptest::prelude::*;
use rna_structure::forest::StructureForest;
use rna_structure::mutate::{self, MutationConfig};
use rna_structure::{generate, stats, ArcStructure};

/// Re-validates a structure from its raw arcs (exercises the full
/// constructor checks; the constructor is the oracle).
fn revalidates(s: &ArcStructure) -> bool {
    ArcStructure::new(s.len(), s.arcs().iter().copied()).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_structures_valid(len in 0u32..150, density in 0.0f64..1.6, seed in 0u64..50_000) {
        let s = generate::random_structure(len, density, seed);
        prop_assert!(revalidates(&s));
        prop_assert!(2 * s.num_arcs() <= s.len());
    }

    #[test]
    fn prop_rrna_like_valid_and_exact(len_base in 30u32..200, arc_frac in 2u32..5, seed in 0u64..10_000) {
        let arcs = len_base / (2 * arc_frac);
        prop_assume!(arcs > 0);
        let cfg = generate::RrnaConfig {
            len: len_base,
            arcs,
            mean_stem: 5,
            nest_bias: 0.5,
        };
        let s = generate::rrna_like(&cfg, seed);
        prop_assert!(revalidates(&s));
        prop_assert_eq!(s.len(), len_base);
        prop_assert_eq!(s.num_arcs(), arcs);
    }

    #[test]
    fn prop_forest_is_consistent(len in 4u32..120, seed in 0u64..10_000) {
        let s = generate::random_structure(len, 1.0, seed);
        let f = StructureForest::build(&s);
        // Parent/child symmetry.
        for (k, node) in f.nodes().iter().enumerate() {
            for &c in &node.children {
                prop_assert_eq!(f.nodes()[c as usize].parent, Some(k as u32));
                prop_assert!(node.arc.nests(&f.nodes()[c as usize].arc));
            }
            if let Some(p) = node.parent {
                prop_assert!(f.nodes()[p as usize].children.contains(&(k as u32)));
                prop_assert_eq!(f.nodes()[p as usize].depth + 1, node.depth);
            } else {
                prop_assert_eq!(node.depth, 0);
            }
        }
        // Preorder covers everything exactly once.
        let mut order = f.preorder();
        order.sort_unstable();
        let expected: Vec<u32> = (0..s.num_arcs()).collect();
        prop_assert_eq!(order, expected);
    }

    #[test]
    fn prop_stats_consistent(len in 0u32..120, density in 0.2f64..1.2, seed in 0u64..10_000) {
        let s = generate::random_structure(len, density, seed);
        let st = stats::stats(&s);
        prop_assert_eq!(st.arcs, s.num_arcs());
        prop_assert!(st.max_depth as f64 >= st.mean_depth);
        prop_assert!(st.top_level_arcs <= st.arcs);
        prop_assert!(st.stems <= st.arcs);
        prop_assert!(st.longest_stem <= st.arcs);
        if st.arcs > 0 {
            prop_assert!(st.stems >= 1);
            prop_assert!(st.longest_stem >= 1);
            prop_assert!(st.mean_depth >= 1.0);
        }
    }

    #[test]
    fn prop_mutation_preserves_validity(len in 20u32..120, seed in 0u64..10_000, mseed in 0u64..1000) {
        let s = generate::random_structure(len, 0.9, seed);
        let cfg = MutationConfig {
            arc_removals: 3,
            hairpin_insertions: 2,
            span_deletions: 2,
        };
        let m = mutate::mutate(&s, &cfg, mseed);
        prop_assert!(revalidates(&m));
    }

    #[test]
    fn prop_enclose_and_concat_compose(len in 2u32..40, seed in 0u64..5000) {
        let a = generate::random_structure(len, 0.8, seed);
        let b = generate::random_structure(len, 0.8, seed + 1);
        let c = a.concat(&b).enclosed();
        prop_assert!(revalidates(&c));
        prop_assert_eq!(c.len(), 2 * len + 2);
        prop_assert_eq!(c.num_arcs(), a.num_arcs() + b.num_arcs() + 1);
        prop_assert_eq!(c.max_depth(), a.max_depth().max(b.max_depth()) + 1);
    }

    #[test]
    fn prop_arcs_in_window_definition(len in 4u32..80, seed in 0u64..5000,
                                      i in 0u32..80, j in 0u32..80) {
        let s = generate::random_structure(len, 1.0, seed);
        let i = i % len;
        let j = j % len;
        let got = s.arcs_in_window(i, j);
        let expected: Vec<u32> = (0..s.num_arcs())
            .filter(|&k| {
                let a = s.arc(k);
                a.left >= i && a.right <= j
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn prop_draw_round_trips_via_last_line(len in 0u32..80, seed in 0u64..5000) {
        let s = generate::random_structure(len, 0.9, seed);
        let d = rna_structure::draw::arc_diagram(&s);
        let last = d.lines().last().unwrap_or("");
        let parsed = rna_structure::formats::dot_bracket::parse(last).unwrap();
        prop_assert_eq!(parsed, s);
    }
}

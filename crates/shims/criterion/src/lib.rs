//! Offline stand-in for the `criterion` crate (see
//! `crates/shims/README.md`).
//!
//! Implements the harness subset this workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the `config = ...` and plain
//! forms).
//!
//! Instead of criterion's statistical analysis, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints
//! mean / min / max per-iteration times. Good enough for the relative
//! comparisons the bench suite makes; not a replacement for real
//! criterion statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-sample measurement time. Accepted for API
    /// compatibility; the shim sizes samples by iteration count
    /// instead.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let stats = run_bench(self.sample_size, |b| f(b));
        report("", id, &stats, None);
        self
    }
}

/// Per-element/byte scaling hint attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput hint used to derive rate numbers.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: Into<BenchmarkId>,
    {
        let id = id.into();
        let stats = run_bench(self.sample_size, |b| f(b));
        report(&self.name, &id.to_string(), &stats, self.throughput);
        self
    }

    /// Runs one benchmark receiving a borrowed input value.
    pub fn bench_with_input<F, I, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
        I: Into<BenchmarkId>,
    {
        let id = id.into();
        let stats = run_bench(self.sample_size, |b| f(b, input));
        report(&self.name, &id.to_string(), &stats, self.throughput);
        self
    }

    /// Ends the group. (No-op beyond matching criterion's API.)
    pub fn finish(self) {}
}

/// A function-name / parameter pair naming one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `new("tabulate", 512)` renders as `tabulate/512`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// A bare parameter id (no function-name prefix).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, mut f: F) -> Stats {
    // Calibrate: find an iteration count where one sample takes ≳2ms,
    // so Instant resolution noise stays small.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters as u32);
    }
    let total: Duration = per_iter.iter().sum();
    Stats {
        mean: total / per_iter.len() as u32,
        min: per_iter.iter().min().copied().unwrap_or_default(),
        max: per_iter.iter().max().copied().unwrap_or_default(),
    }
}

fn report(group: &str, id: &str, stats: &Stats, throughput: Option<Throughput>) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / stats.mean.as_secs_f64();
            format!("  {per_sec:.3e} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / stats.mean.as_secs_f64();
            format!("  {per_sec:.3e} B/s")
        }
        None => String::new(),
    };
    println!(
        "bench {full}: mean {:?}  min {:?}  max {:?}{rate}",
        stats.mean, stats.min, stats.max
    );
}

/// Declares a group of benchmark functions, optionally with a
/// configured [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each declared group. CLI arguments (e.g.
/// the `--bench` flag cargo passes) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim-smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("spin", 100), &100u64, |b, &n| {
            b.iter(|| spin(n))
        });
        group.bench_function("plain", |b| b.iter(|| spin(10)));
        group.finish();
    }

    #[test]
    fn macros_compile_and_run() {
        fn target(c: &mut Criterion) {
            c.bench_function("macro-smoke", |b| b.iter(|| spin(5)));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Offline stand-in for the `crossbeam` crate (see
//! `crates/shims/README.md`).
//!
//! Only the [`channel`] module is provided, implemented over
//! `std::sync::mpsc`. The workspace uses: `unbounded`, `bounded`,
//! cloneable [`channel::Sender`]s shared across threads, and blocking /
//! timeout receives with crossbeam's error types. Since Rust 1.72 the
//! std mpsc channels are lock-free crossbeam ports themselves, so the
//! semantics (including `bounded(0)` rendezvous behavior) match.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels with crossbeam's surface.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone; the
    /// unsent message is returned inside.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, eliding the
    // unsent payload.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with no message.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was buffered.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half: cloneable, shareable across threads.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Blocks with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages; ends when every
        /// sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }
    }

    /// Creates a channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap == 0` gives rendezvous semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_backpressure_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_shared_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            std::thread::scope(|s| {
                for i in 0..4u32 {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(i).unwrap());
                }
            });
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}

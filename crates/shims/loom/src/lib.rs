//! Offline in-workspace stand-in for [`loom`], the permutation-based
//! concurrency model checker. See `crates/shims/README.md` for why the
//! workspace vendors its dependencies.
//!
//! [`model`] runs a closure repeatedly, exhaustively enumerating the
//! thread interleavings its synchronization operations admit: all
//! model threads are serialized onto one execution token, every
//! atomic/lock/channel/spawn/join operation is a scheduling choice
//! point, and the driver replays recorded decision prefixes
//! depth-first until every alternative has been explored. A deadlock,
//! a panic (assertion failure) in any thread, or a livelock aborts the
//! search and is reported from `model` with the failing execution's
//! message — so `catch_unwind(|| model(buggy))` is the idiom for
//! asserting a model *fails*.
//!
//! # What this shim does and does not check
//!
//! * **Covered**: every interleaving of sequentially consistent
//!   operations, up to the preemption bound (default 3 involuntary
//!   context switches per execution — the CHESS result; raise or lift
//!   it with [`model::Builder`]). Deadlocks are detected exactly: a
//!   state where no thread can run is reported with the blocked set.
//! * **Not covered**: weak-memory effects. Real `loom` models the
//!   C11 memory model (store buffering, `Relaxed`/`Acquire`/`Release`
//!   distinctions); this shim runs every atomic at `SeqCst`, so a
//!   missing-`Release` bug that only reorders under weak memory will
//!   NOT be found here. The workspace covers that axis separately with
//!   Miri and ThreadSanitizer (see DESIGN.md, "Static verification").
//!   Spurious condvar wakeups are not modeled either.
//!
//! The API mirrors the subset of `loom` 0.7 the workspace uses:
//! [`model`], [`model::Builder`], [`thread::spawn`],
//! [`thread::yield_now`], [`sync::Mutex`], [`sync::Condvar`],
//! [`sync::mpsc`], and [`sync::atomic`]. Model closures must be
//! deterministic apart from scheduling (no wall clock, no OS
//! randomness) — replay depends on it, and the runtime asserts it.
//!
//! [`loom`]: https://crates.io/crates/loom

pub mod hint {
    //! Spin-loop hints.

    /// Equivalent to [`crate::thread::yield_now`]: in a model a spin
    /// retry must cede the token or the loop would livelock.
    pub fn spin_loop() {
        crate::rt::yield_point();
    }
}

pub mod sync;
pub mod thread;

mod rt;

pub mod model {
    //! The exploration driver.

    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, OnceLock};

    use crate::rt;

    /// Serializes concurrent `model` calls (e.g. from parallel test
    /// threads): the runtime's execution context is process-global.
    fn exploration_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Exploration configuration, mirroring `loom::model::Builder`.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum involuntary context switches explored per
        /// execution; `None` lifts the bound (full exhaustion —
        /// feasible only for very small models). Defaults to 3, which
        /// empirically catches almost all interleaving bugs (CHESS).
        /// Note real `loom` defaults to unbounded.
        pub preemption_bound: Option<usize>,
        /// Ceiling on explored executions, as a livelock backstop.
        pub max_iterations: u64,
    }

    impl Default for Builder {
        fn default() -> Self {
            Builder {
                preemption_bound: Some(3),
                max_iterations: 2_000_000,
            }
        }
    }

    impl Builder {
        /// Default configuration.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Explores every schedule of `f` under this configuration.
        /// Panics on the first failing execution, with its failure
        /// message and the number of executions explored.
        pub fn check<F: Fn()>(&self, f: F) {
            let _guard = exploration_lock()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut script = Vec::new();
            let mut iterations: u64 = 0;
            loop {
                iterations += 1;
                assert!(
                    iterations <= self.max_iterations,
                    "loom: exceeded {} executions without exhausting the schedule \
                     space; shrink the model or bound preemptions",
                    self.max_iterations
                );
                let exec = Arc::new(rt::Execution::new(script, self.preemption_bound));
                rt::set_context(exec.clone(), 0);
                let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
                let failure = match &outcome {
                    Ok(()) => None,
                    Err(payload) if payload.is::<rt::Abort>() => None, // already recorded
                    Err(payload) => Some(
                        payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "model panicked".to_string()),
                    ),
                };
                let abort = exec.finish_main(failure);
                rt::clear_context();
                if let Some(msg) = abort {
                    panic!("loom: failing execution found (iteration {iterations}): {msg}");
                }
                script = exec.take_script();
                let mut advanced = false;
                while let Some(last) = script.last_mut() {
                    if last.index + 1 < last.alternatives {
                        last.index += 1;
                        advanced = true;
                        break;
                    }
                    script.pop();
                }
                if !advanced {
                    return; // schedule space exhausted, all executions passed
                }
            }
        }
    }
}

/// Explores every schedule of `f` with the default [`model::Builder`]
/// configuration. See the crate docs for coverage and caveats.
pub fn model<F: Fn()>(f: F) {
    model::Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
    use super::sync::{mpsc, Arc, Condvar, Mutex};
    use std::panic::catch_unwind;

    /// Extracts the panic message from a `catch_unwind` payload
    /// (`{:?}` on `Box<dyn Any>` prints only `Any { .. }`).
    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "opaque panic payload".to_string())
    }

    /// Two unsynchronized increments: load/store (not fetch_add) so an
    /// interleaving where both read 0 exists; the model must find it.
    #[test]
    fn finds_lost_update() {
        let result = catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicU32::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        super::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            })
        });
        let msg = panic_message(result.expect_err("model must fail"));
        assert!(msg.contains("lost update"), "{msg}");
    }

    /// fetch_add is atomic, so the same shape with rmw passes in every
    /// interleaving.
    #[test]
    fn atomic_rmw_increments_survive_every_schedule() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    /// Classic AB/BA lock ordering: some schedule deadlocks, and the
    /// detector must say so rather than hang.
    #[test]
    fn finds_lock_order_deadlock() {
        let result = catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let (a2, b2) = (a.clone(), b.clone());
                let t = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            })
        });
        let msg = panic_message(result.expect_err("model must deadlock"));
        assert!(msg.contains("deadlock"), "{msg}");
    }

    /// Channel handoff is a happens-before edge: the receiver always
    /// sees the store issued before the send.
    #[test]
    fn channel_send_publishes() {
        super::model(|| {
            let flag = Arc::new(AtomicU32::new(0));
            let (tx, rx) = mpsc::channel::<()>();
            let f2 = flag.clone();
            let t = super::thread::spawn(move || {
                f2.store(7, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
            rx.recv().unwrap();
            assert_eq!(flag.load(Ordering::SeqCst), 7);
            t.join().unwrap();
        });
    }

    /// Condvar wait/notify round-trip under every schedule, including
    /// notify-before-wait (the waiter must not hang).
    #[test]
    fn condvar_handshake_never_hangs() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock().unwrap() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    /// Disconnect: dropping the last sender unparks a waiting receiver
    /// with an error instead of deadlocking.
    #[test]
    fn recv_errors_on_disconnect() {
        super::model(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let t = super::thread::spawn(move || drop(tx));
            assert!(rx.recv().is_err());
            t.join().unwrap();
        });
    }
}

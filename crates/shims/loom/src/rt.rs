//! The exploration runtime behind [`crate::model`].
//!
//! All model threads are real OS threads serialized onto a single
//! execution token: exactly one thread runs at a time, and every
//! synchronization operation (atomic access, lock, channel op, spawn,
//! join, yield) is a *choice point* where the scheduler decides which
//! thread runs next. An execution is fully described by the sequence
//! of choices taken; the driver enumerates executions depth-first by
//! replaying a recorded prefix and bumping the last decision that has
//! unexplored alternatives.
//!
//! Preemption bounding keeps the tree tractable: switching away from a
//! thread that could have continued (an involuntary preemption) is
//! only explored while the per-execution preemption budget lasts;
//! switches forced by blocking, finishing, or an explicit yield are
//! always free. This is the CHESS result — almost all interleaving
//! bugs manifest within two or three preemptions.

use std::cell::RefCell;
use std::panic;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard per-execution ceiling on recorded choices, to turn accidental
/// livelock (e.g. an unbounded spin loop) into a diagnosable failure.
const MAX_BRANCHES: usize = 50_000;

/// One recorded scheduling decision: of `alternatives` eligible
/// threads at this point, the `index`-th was chosen.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub(crate) index: usize,
    pub(crate) alternatives: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked,
    Finished,
}

/// What kind of choice point the active thread reached.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reason {
    /// A synchronization operation; continuing the current thread is
    /// the default, switching costs a preemption.
    Point,
    /// An explicit yield; switching is free and preferred.
    Yield,
    /// The thread just blocked and cannot continue.
    Block,
    /// The thread finished.
    Finish,
}

/// Panic payload used to unwind model threads when an execution is
/// torn down early (deadlock, branch overflow, or a sibling thread's
/// panic). Caught by the spawn wrapper and the driver; never
/// user-visible.
pub(crate) struct Abort;

struct State {
    script: Vec<Choice>,
    cursor: usize,
    threads: Vec<ThreadState>,
    /// Index of the thread holding the execution token
    /// (`usize::MAX` once every thread has finished).
    active: usize,
    /// `(waiter, target)` pairs parked in `join`.
    join_waiters: Vec<(usize, usize)>,
    preemptions: usize,
    /// First failure of this execution: a deadlock report or a model
    /// thread's panic message.
    abort: Option<String>,
}

pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
    preemption_bound: Option<usize>,
}

thread_local! {
    /// The execution this OS thread belongs to, and its logical id.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_context(exec: Arc<Execution>, tid: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_context() {
    CONTEXT.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// The logical id of the calling model thread. Panics outside a model.
pub(crate) fn tid() -> usize {
    current()
        .expect("loom primitive used outside loom::model")
        .1
}

/// A plain choice point: callers not inside a model (the primitives
/// double as pass-through wrappers there) fall through untouched, and
/// nothing is scheduled while a panic is unwinding (guards dropped
/// during an abort must not re-enter the scheduler).
pub(crate) fn point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, me)) = current() {
        exec.schedule(me, Reason::Point);
    }
}

/// An explicit yield: like [`point`], but switching is free and other
/// runnable threads are preferred.
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((exec, me)) = current() {
        exec.schedule(me, Reason::Yield);
    }
}

/// Parks the calling thread until [`unblock`] marks it runnable again.
/// The caller must have registered itself with whoever will wake it
/// *before* calling this (no token release happens in between, so the
/// register-then-block pair is atomic).
pub(crate) fn block_self() {
    let (exec, me) = current().expect("loom primitive used outside loom::model");
    exec.schedule(me, Reason::Block);
}

/// Marks a parked thread runnable. No-op if the thread is not blocked
/// (e.g. it was already woken, or never got to block). Must be called
/// by the token-holding thread.
pub(crate) fn unblock(target: usize) {
    if let Some((exec, _)) = current() {
        let mut st = lock(&exec.state);
        if st.threads[target] == ThreadState::Blocked {
            st.threads[target] = ThreadState::Runnable;
        }
    }
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    // The state mutex is only poisoned if a *scheduler* invariant
    // panicked; model-thread panics never unwind while holding it.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    pub(crate) fn new(script: Vec<Choice>, preemption_bound: Option<usize>) -> Self {
        Execution {
            state: Mutex::new(State {
                script,
                cursor: 0,
                threads: vec![ThreadState::Runnable],
                active: 0,
                join_waiters: Vec::new(),
                preemptions: 0,
                abort: None,
            }),
            cv: Condvar::new(),
            preemption_bound,
        }
    }

    /// Adds a new runnable logical thread, returning its id. Called by
    /// `spawn` while holding the token, so ids are deterministic.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock(&self.state);
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// The active thread reached a choice point: pick who runs next,
    /// then wait until this thread holds the token again (unless it
    /// just finished).
    pub(crate) fn schedule(&self, me: usize, reason: Reason) {
        let mut st = lock(&self.state);
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(Abort);
        }
        debug_assert_eq!(st.active, me, "only the token holder may schedule");
        match reason {
            Reason::Block => st.threads[me] = ThreadState::Blocked,
            Reason::Finish => {
                st.threads[me] = ThreadState::Finished;
                // Wake anyone joining on this thread.
                let mut i = 0;
                while i < st.join_waiters.len() {
                    if st.join_waiters[i].1 == me {
                        let (waiter, _) = st.join_waiters.swap_remove(i);
                        st.threads[waiter] = ThreadState::Runnable;
                    } else {
                        i += 1;
                    }
                }
            }
            Reason::Point | Reason::Yield => {}
        }
        self.pick_next(&mut st, me, reason);
        if reason == Reason::Finish {
            return;
        }
        self.wait_token(st, me);
    }

    /// Waits until `me` holds the token and is runnable (or the
    /// execution aborts, unwinding with [`Abort`]).
    fn wait_token(&self, mut st: MutexGuard<'_, State>, me: usize) {
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.active == me && st.threads[me] == ThreadState::Runnable {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A freshly spawned thread parks here until first scheduled.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        let st = lock(&self.state);
        self.wait_token(st, me);
    }

    /// Consumes one scheduling decision (recorded or replayed) and
    /// hands the token to the chosen thread.
    fn pick_next(&self, st: &mut State, me: usize, reason: Reason) {
        let me_runnable = st.threads[me] == ThreadState::Runnable;
        let mut candidates: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Runnable)
            .collect();
        if candidates.is_empty() {
            if st.threads.iter().all(|&s| s == ThreadState::Finished) {
                st.active = usize::MAX;
            } else {
                let blocked: Vec<usize> = (0..st.threads.len())
                    .filter(|&t| st.threads[t] == ThreadState::Blocked)
                    .collect();
                st.abort = Some(format!(
                    "deadlock: no thread is runnable, thread(s) {blocked:?} are blocked"
                ));
            }
            self.cv.notify_all();
            return;
        }
        if me_runnable {
            candidates.retain(|&t| t != me);
            match reason {
                // Continuing the current thread is choice 0; any other
                // choice is a preemption and only offered while the
                // budget lasts.
                Reason::Point => {
                    let exhausted = self.preemption_bound.is_some_and(|b| st.preemptions >= b);
                    if exhausted {
                        candidates.clear();
                    }
                    candidates.insert(0, me);
                }
                // Yielding prefers the others; running again is the
                // last resort. Switching here is voluntary and free.
                Reason::Yield => candidates.push(me),
                Reason::Block | Reason::Finish => unreachable!("me is not runnable"),
            }
        }
        let choice = if st.cursor < st.script.len() {
            let c = st.script[st.cursor];
            assert_eq!(
                c.alternatives,
                candidates.len(),
                "nondeterministic model: replay diverged at choice {} \
                 (is the closure deterministic apart from scheduling?)",
                st.cursor
            );
            c
        } else {
            assert!(
                st.script.len() < MAX_BRANCHES,
                "model exceeded {MAX_BRANCHES} choice points in one execution \
                 (unbounded loop in the model?)"
            );
            let c = Choice {
                index: 0,
                alternatives: candidates.len(),
            };
            st.script.push(c);
            c
        };
        st.cursor += 1;
        let next = candidates[choice.index];
        if me_runnable && reason == Reason::Point && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    /// Parks `me` until `target` finishes; a plain choice point follows
    /// so the post-join continuation is explored like any other op.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut st = lock(&self.state);
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(Abort);
        }
        if st.threads[target] != ThreadState::Finished {
            st.threads[me] = ThreadState::Blocked;
            st.join_waiters.push((me, target));
            self.pick_next(&mut st, me, Reason::Block);
            self.wait_token(st, me);
        } else {
            drop(st); // schedule() re-locks the state below
        }
        self.schedule(me, Reason::Point);
    }

    /// A spawned thread's orderly completion.
    pub(crate) fn finish_thread(&self, me: usize) {
        self.schedule(me, Reason::Finish);
    }

    /// A spawned thread's failure: record the message (first failure
    /// wins), tear the execution down.
    pub(crate) fn record_failure(&self, me: usize, msg: String) {
        let mut st = lock(&self.state);
        if st.abort.is_none() {
            st.abort = Some(msg);
        }
        st.threads[me] = ThreadState::Finished;
        self.cv.notify_all();
    }

    /// A spawned thread unwound by [`Abort`]: just check out.
    pub(crate) fn finish_quiet(&self, me: usize) {
        let mut st = lock(&self.state);
        st.threads[me] = ThreadState::Finished;
        self.cv.notify_all();
    }

    /// Called by the driver after the model closure returned (or
    /// panicked, with `failure` carrying the message). Drains any
    /// still-running threads, waits for every thread to check out, and
    /// returns the execution's failure, if any.
    pub(crate) fn finish_main(&self, failure: Option<String>) -> Option<String> {
        {
            let mut st = lock(&self.state);
            if let Some(msg) = failure {
                if st.abort.is_none() {
                    st.abort = Some(msg);
                }
            }
            st.threads[0] = ThreadState::Finished;
            if st.abort.is_some() {
                self.cv.notify_all();
            } else {
                self.pick_next(&mut st, 0, Reason::Finish);
            }
        }
        let mut st = lock(&self.state);
        while !st.threads.iter().all(|&s| s == ThreadState::Finished) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.abort.clone()
    }

    /// The recorded decision sequence, for the driver's DFS advance.
    pub(crate) fn take_script(&self) -> Vec<Choice> {
        std::mem::take(&mut lock(&self.state).script)
    }
}

//! Model-checked synchronization primitives, mirroring the
//! `std::sync` surface the workspace uses.

use std::sync::Mutex as StdMutex;

use crate::rt;

pub use std::sync::Arc;

pub mod atomic;
pub mod mpsc;

/// Control block of a model [`Mutex`]: the logical hold bit plus the
/// threads parked on it. Accessed only by the token-holding thread, so
/// the inner std mutex is never contended.
struct MutexCtl {
    locked: bool,
    waiters: Vec<usize>,
}

/// A mutual-exclusion lock whose acquire/release are scheduler choice
/// points. Lock *data* lives in an uncontended `std` mutex; exclusion
/// is enforced logically so blocked threads park in the scheduler
/// (where the deadlock detector can see them), not in the OS.
pub struct Mutex<T> {
    ctl: StdMutex<MutexCtl>,
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]. Releasing is a choice point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `Some` until drop; taken first so the std guard is released
    /// before the logical unlock wakes any waiter.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(data: T) -> Self {
        Mutex {
            ctl: StdMutex::new(MutexCtl {
                locked: false,
                waiters: Vec::new(),
            }),
            data: StdMutex::new(data),
        }
    }

    /// Acquires the lock, parking in the scheduler while contended.
    /// Never actually poisoned — the `Result` mirrors `std` so call
    /// sites write `lock().unwrap()` unchanged.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::sync::PoisonError<MutexGuard<'_, T>>> {
        rt::point();
        loop {
            {
                let mut ctl = self.ctl.lock().expect("ctl mutex never poisoned");
                if !ctl.locked {
                    ctl.locked = true;
                    break;
                }
                ctl.waiters.push(rt::tid());
            }
            rt::block_self();
        }
        Ok(MutexGuard {
            lock: self,
            inner: Some(self.data.try_lock().expect("logical exclusion held")),
        })
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> Result<T, std::sync::PoisonError<T>> {
        Ok(self.data.into_inner().expect("data mutex never poisoned"))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the std guard before anyone wakes
        let woken: Vec<usize> = {
            let mut ctl = self.lock.ctl.lock().expect("ctl mutex never poisoned");
            ctl.locked = false;
            ctl.waiters.drain(..).collect()
        };
        for t in woken {
            rt::unblock(t);
        }
        rt::point();
    }
}

/// A parked [`Condvar`] waiter: notified flips when a notify claims it.
struct CvWaiter {
    tid: usize,
    notified: bool,
}

/// A condition variable whose wait/notify are choice points. No
/// spurious wakeups are modeled; a waiter runs only after a notify
/// claims it (real `loom` explores spurious wakeups too — code relying
/// on them being *absent* is out of scope here).
pub struct Condvar {
    waiters: StdMutex<Vec<CvWaiter>>,
}

impl Condvar {
    /// Creates the condition variable.
    pub fn new() -> Self {
        Condvar {
            waiters: StdMutex::new(Vec::new()),
        }
    }

    /// Atomically releases `guard` and parks until notified, then
    /// reacquires the lock.
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>> {
        let me = rt::tid();
        let lock = guard.lock;
        // Register before releasing the lock: a notify issued by the
        // thread that takes the lock next must find this waiter.
        self.waiters
            .lock()
            .expect("cv mutex never poisoned")
            .push(CvWaiter {
                tid: me,
                notified: false,
            });
        drop(guard);
        loop {
            {
                let mut ws = self.waiters.lock().expect("cv mutex never poisoned");
                if let Some(i) = ws.iter().position(|w| w.tid == me && w.notified) {
                    ws.swap_remove(i);
                    break;
                }
            }
            rt::block_self();
        }
        lock.lock()
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        rt::point();
        let target = {
            let mut ws = self.waiters.lock().expect("cv mutex never poisoned");
            ws.iter_mut().find(|w| !w.notified).map(|w| {
                w.notified = true;
                w.tid
            })
        };
        if let Some(t) = target {
            rt::unblock(t);
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        rt::point();
        let targets: Vec<usize> = {
            let mut ws = self.waiters.lock().expect("cv mutex never poisoned");
            ws.iter_mut()
                .filter(|w| !w.notified)
                .map(|w| {
                    w.notified = true;
                    w.tid
                })
                .collect()
        };
        for t in targets {
            rt::unblock(t);
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

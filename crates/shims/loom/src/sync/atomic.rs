//! Model-checked atomics. Every access is a scheduler choice point;
//! the value itself lives in a `std` atomic accessed at `SeqCst`, so
//! the model explores *interleavings* of sequentially consistent
//! operations — weak-memory reorderings are NOT modeled (see the crate
//! docs for what that does and does not cover).

use crate::rt;

pub use std::sync::atomic::Ordering;

macro_rules! atomic_common {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-checked counterpart of the `std` atomic of the same
        /// name. The `Ordering` argument is accepted for source
        /// compatibility and ignored: the model runs every access at
        /// `SeqCst`.
        #[derive(Debug, Default)]
        pub struct $name {
            v: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates the atomic.
            pub fn new(v: $ty) -> Self {
                Self {
                    v: std::sync::atomic::$std::new(v),
                }
            }

            /// Loads the value (choice point).
            pub fn load(&self, _order: Ordering) -> $ty {
                rt::point();
                self.v.load(Ordering::SeqCst)
            }

            /// Stores a value (choice point).
            pub fn store(&self, val: $ty, _order: Ordering) {
                rt::point();
                self.v.store(val, Ordering::SeqCst)
            }

            /// Swaps the value (choice point).
            pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                rt::point();
                self.v.swap(val, Ordering::SeqCst)
            }

            /// Compare-and-exchange (choice point).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                rt::point();
                self.v
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the value. Not a choice
            /// point: ownership proves exclusivity.
            pub fn into_inner(self) -> $ty {
                self.v.into_inner()
            }
        }
    };
}

macro_rules! atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        atomic_common!($name, $std, $ty);

        impl $name {
            /// Adds to the value, returning the previous value
            /// (choice point).
            pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                rt::point();
                self.v.fetch_add(val, Ordering::SeqCst)
            }

            /// Subtracts from the value, returning the previous value
            /// (choice point).
            pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                rt::point();
                self.v.fetch_sub(val, Ordering::SeqCst)
            }

            /// Maximum with the value, returning the previous value
            /// (choice point).
            pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                rt::point();
                self.v.fetch_max(val, Ordering::SeqCst)
            }
        }
    };
}

atomic_int!(AtomicU32, AtomicU32, u32);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_common!(AtomicBool, AtomicBool, bool);

//! Model-checked unbounded channel, mirroring `std::sync::mpsc`.
//! Sends never block (the queue is unbounded); a `recv` on an empty
//! queue parks in the scheduler.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

pub use std::sync::mpsc::{RecvError, SendError};

struct Shared<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
    /// Receiver tids parked on an empty queue (at most one — the
    /// receiver is not clonable — but kept as a list for symmetry).
    recv_waiters: Vec<usize>,
}

/// Creates an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(StdMutex::new(Shared {
        queue: VecDeque::new(),
        senders: 1,
        receiver_alive: true,
        recv_waiters: Vec::new(),
    }));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half. Clonable; dropping the last sender wakes a
/// parked receiver with a disconnect.
pub struct Sender<T> {
    shared: Arc<StdMutex<Shared<T>>>,
}

impl<T> Sender<T> {
    /// Enqueues a value (choice point). Errors if the receiver is
    /// gone, handing the value back like `std`.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        rt::point();
        let woken: Vec<usize> = {
            let mut sh = self.shared.lock().expect("channel mutex never poisoned");
            if !sh.receiver_alive {
                return Err(SendError(value));
            }
            sh.queue.push_back(value);
            sh.recv_waiters.drain(..).collect()
        };
        for t in woken {
            rt::unblock(t);
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .lock()
            .expect("channel mutex never poisoned")
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let woken: Vec<usize> = {
            let mut sh = self.shared.lock().expect("channel mutex never poisoned");
            sh.senders -= 1;
            if sh.senders == 0 {
                sh.recv_waiters.drain(..).collect()
            } else {
                Vec::new()
            }
        };
        for t in woken {
            rt::unblock(t);
        }
    }
}

/// The receiving half.
pub struct Receiver<T> {
    shared: Arc<StdMutex<Shared<T>>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next value, parking while the queue is empty
    /// (choice point). Errors once every sender is gone and the queue
    /// is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        rt::point();
        loop {
            {
                let mut sh = self.shared.lock().expect("channel mutex never poisoned");
                if let Some(v) = sh.queue.pop_front() {
                    return Ok(v);
                }
                if sh.senders == 0 {
                    return Err(RecvError);
                }
                let me = rt::tid();
                sh.recv_waiters.push(me);
            }
            rt::block_self();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .lock()
            .expect("channel mutex never poisoned")
            .receiver_alive = false;
    }
}

//! Model threads: real OS threads serialized onto the execution
//! token, with spawn/join as choice points.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<rt::Execution>,
    result: Arc<StdMutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// Spawns a model thread. Must be called inside [`crate::model`]. The
/// spawn itself is a choice point: the child becomes runnable
/// immediately but runs only when the scheduler picks it.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = rt::current().expect("loom::thread::spawn outside loom::model");
    let tid = exec.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let os = {
        let exec = exec.clone();
        let result = result.clone();
        std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                rt::set_context(exec.clone(), tid);
                // The first-schedule wait must sit inside the
                // catch_unwind: an execution aborting before this
                // thread ever runs raises `Abort` from the wait, and
                // the thread still has to mark itself finished.
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    exec.wait_first_schedule(tid);
                    f()
                })) {
                    Ok(v) => {
                        *result.lock().expect("result mutex never poisoned") = Some(v);
                        exec.finish_thread(tid);
                    }
                    Err(payload) if payload.is::<rt::Abort>() => exec.finish_quiet(tid),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "model thread panicked".to_string());
                        exec.record_failure(tid, msg);
                    }
                }
            })
            .expect("OS thread spawn")
    };
    exec.schedule(me, rt::Reason::Point);
    JoinHandle {
        tid,
        exec,
        result,
        os: Some(os),
    }
}

impl<T> JoinHandle<T> {
    /// Parks until the thread finishes, returning its value. A panic
    /// in the child tears down the whole execution (reported by
    /// [`crate::model`]) rather than surfacing as `Err` here, so the
    /// `Result` mirrors `std` only in shape.
    pub fn join(mut self) -> std::thread::Result<T> {
        let me = rt::tid();
        self.exec.join_thread(me, self.tid);
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        Ok(self
            .result
            .lock()
            .expect("result mutex never poisoned")
            .take()
            .expect("joined thread stored its result"))
    }
}

/// Voluntarily cedes the token: other runnable threads are preferred
/// and the switch never costs preemption budget.
pub fn yield_now() {
    rt::yield_point();
}

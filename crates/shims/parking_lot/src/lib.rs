//! Offline stand-in for the `parking_lot` crate (see
//! `crates/shims/README.md`).
//!
//! [`RwLock`] and [`Mutex`] wrap their `std::sync` counterparts with
//! parking_lot's panic-free signatures (`read()`/`write()`/`lock()`
//! return guards directly). Lock poisoning is transparently ignored —
//! parking_lot has no poisoning, and a panicked critical section will
//! already be unwinding the test that caused it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A readers-writer lock with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking until granted.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until granted.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until granted.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() = 9;
        assert_eq!(*lock.read(), 9);
        assert_eq!(lock.into_inner(), 9);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
    }
}

//! Offline stand-in for the `proptest` crate (see
//! `crates/shims/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]` headers and
//! `arg in strategy` parameters, range strategies over integers and
//! `f64`, [`prelude::any`] for primitives, [`collection::vec`],
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, and
//! [`prop_assume!`].
//!
//! Differences from real proptest: cases are generated from a
//! **deterministic** per-test seed (derived from the test name), and
//! there is **no shrinking** — a failure reports the generated inputs
//! of the failing case verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case driving machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped
        /// without counting against `cases`.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic xoshiro256++ source for strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier (e.g. the
        /// test function's name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Full-domain strategy returned by [`any`](crate::prelude::any).
    #[derive(Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Creates the [`Any`] strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, min..max)`: vectors of `element`-drawn values with
    /// length in `[min, max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal recursion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            // Cap total attempts so heavy `prop_assume!` rejection cannot
            // loop forever.
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                    stringify!($name), attempts, passed
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case {} failed: {}", stringify!($name), passed, msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 3u32..17, y in 0.25f64..0.5, z in 1u64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_skips_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_samples_full_domain(x in any::<u32>()) {
            let _ = x; // nothing to assert beyond type soundness
        }
    }

    #[test]
    fn failing_assertions_panic() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[test]
                fn inner(x in 0u32..1) {
                    prop_assert_eq!(x, 99);
                }
            }
            inner();
        });
        assert!(result.is_err());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external dependencies are replaced by small in-tree shims that
//! implement exactly the API subset the workspace uses (see
//! `crates/shims/README.md`). This one covers:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`Rng::gen`] for `bool`, `f64`, and the common integer widths,
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges,
//! * [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! per seed, statistically solid for test-data generation, and **not**
//! the same stream as the real `rand::rngs::StdRng` (nothing in this
//! workspace depends on the exact stream, only on determinism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that [`Rng::gen_range`] can sample uniformly.
///
/// The blanket `impl<T: SampleUniform> SampleRange<T> for Range<T>`
/// mirrors the real crate's structure: a single generic impl lets type
/// inference flow from the use site (e.g. slice indexing forcing
/// `usize`) back into an otherwise-unannotated range literal.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// The raw entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of an inferred type (`bool`, `f64`,
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (via SplitMix64
    /// expansion).
    fn seed_from_u64(state: u64) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` by Lemire-style rejection (no modulo
/// bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from an empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample from an empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. (The real crate's `StdRng` is ChaCha12;
    /// only determinism per seed is relied upon here.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; remap.
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9u32);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }
}

//! Offline stand-in for the `rayon` crate (see
//! `crates/shims/README.md`).
//!
//! Implements the indexed-data-parallel subset this workspace uses:
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`], `into_par_iter()`
//! over integer ranges, `par_iter()` over slices, and the `map` /
//! `map_init` / `for_each` / `for_each_init` / `collect` /
//! `collect_into_vec` combinators.
//!
//! Scheduling is **dynamic**, like real rayon: workers are scoped
//! threads that claim chunks of the index space from a shared atomic
//! cursor, so uneven per-item costs are absorbed by whichever worker is
//! free — the property the scheduling ablations in this workspace
//! compare against static column ownership. Unlike real rayon the pool
//! is not persistent: each parallel call spawns its workers, which adds
//! tens of microseconds per call. That overhead is *per fan-out*, making
//! barrier-count reduction (fewer, larger parallel regions) directly
//! visible in wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use iter::prelude;

/// Error type of [`ThreadPoolBuilder::build`] (construction never
/// actually fails here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (one per
    /// available CPU).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle fixing the degree of parallelism for the parallel calls
/// issued inside [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

thread_local! {
    /// Thread count installed by the innermost enclosing
    /// [`ThreadPool::install`]; 0 = none (use the machine default).
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Degree of parallelism in the current context.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed == 0 {
        default_threads()
    } else {
        installed
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The engine: runs `step` over `0..len` on the current thread count,
/// dynamic chunk claiming, one `state` per worker, results in index
/// order. Worker panics propagate to the caller.
fn drive<St, R, MS, Step>(len: usize, make_state: MS, step: Step) -> Vec<R>
where
    MS: Fn() -> St + Sync,
    Step: Fn(&mut St, usize) -> R + Sync,
    R: Send,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        let mut state = make_state();
        return (0..len).map(|i| step(&mut state, i)).collect();
    }
    // Small chunks keep claiming dynamic (load-balancing) while bounding
    // cursor contention.
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        for i in start..end {
                            local.push((i, step(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none());
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Parallel iterator types and conversion traits.
pub mod iter {
    use super::drive;

    /// Glob-import target mirroring `rayon::prelude`.
    pub mod prelude {
        pub use super::{IntoParallelIterator, IntoParallelRefIterator};
    }

    /// An indexable, thread-shareable source of items.
    pub trait Producer: Sync {
        /// Item produced per index.
        type Item: Send;
        /// Number of items.
        fn len(&self) -> usize;
        /// Item at index `i` (`i < len()`).
        fn item(&self, i: usize) -> Self::Item;
    }

    /// Sink for the results of a parallel computation (only `Vec` is
    /// provided).
    pub trait FromParallelIterator<T> {
        /// Builds the collection from results in index order.
        fn from_ordered_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// By-value conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item: Send;
        /// Backing producer.
        type Producer: Producer<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> ParIter<Self::Producer>;
    }

    /// By-reference conversion (`.par_iter()`) into a parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a reference).
        type Item: Send;
        /// Backing producer.
        type Producer: Producer<Item = Self::Item>;
        /// Converts `&self`.
        fn par_iter(&'a self) -> ParIter<Self::Producer>;
    }

    /// Producer over an integer range.
    pub struct RangeProducer<T> {
        start: T,
        len: usize,
    }

    macro_rules! impl_range_producer {
        ($($t:ty),*) => {$(
            impl Producer for RangeProducer<$t> {
                type Item = $t;
                fn len(&self) -> usize {
                    self.len
                }
                fn item(&self, i: usize) -> $t {
                    self.start + i as $t
                }
            }
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Producer = RangeProducer<$t>;
                fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                    ParIter {
                        producer: RangeProducer {
                            start: self.start,
                            len: self.end.saturating_sub(self.start) as usize,
                        },
                    }
                }
            }
        )*};
    }
    impl_range_producer!(u32, u64, usize);

    /// Producer over a shared slice.
    pub struct SliceProducer<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
        type Item = &'a T;
        fn len(&self) -> usize {
            self.slice.len()
        }
        fn item(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Producer = SliceProducer<'a, T>;
        fn par_iter(&'a self) -> ParIter<SliceProducer<'a, T>> {
            ParIter {
                producer: SliceProducer { slice: self },
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Producer = SliceProducer<'a, T>;
        fn par_iter(&'a self) -> ParIter<SliceProducer<'a, T>> {
            ParIter {
                producer: SliceProducer { slice: self },
            }
        }
    }

    /// A parallel iterator over a producer's items.
    pub struct ParIter<P> {
        producer: P,
    }

    impl<P: Producer> ParIter<P> {
        /// Applies `f` to every item.
        pub fn map<F, R>(self, f: F) -> ParMap<P, F>
        where
            F: Fn(P::Item) -> R + Sync,
            R: Send,
        {
            ParMap {
                producer: self.producer,
                f,
            }
        }

        /// Applies `f` with one `init()`-created scratch state per
        /// worker thread.
        pub fn map_init<INIT, St, F, R>(self, init: INIT, f: F) -> ParMapInit<P, INIT, F>
        where
            INIT: Fn() -> St + Sync,
            F: Fn(&mut St, P::Item) -> R + Sync,
            R: Send,
        {
            ParMapInit {
                producer: self.producer,
                init,
                f,
            }
        }

        /// Runs `f` on every item.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(P::Item) + Sync,
        {
            let len = self.producer.len();
            drive(len, || (), |(), i| f(self.producer.item(i)));
        }

        /// Runs `f` on every item with one `init()`-created scratch
        /// state per worker thread.
        pub fn for_each_init<INIT, St, F>(self, init: INIT, f: F)
        where
            INIT: Fn() -> St + Sync,
            F: Fn(&mut St, P::Item) + Sync,
        {
            let len = self.producer.len();
            drive(len, init, |state, i| f(state, self.producer.item(i)));
        }
    }

    /// Result of [`ParIter::map`].
    pub struct ParMap<P, F> {
        producer: P,
        f: F,
    }

    impl<P: Producer, F, R> ParMap<P, F>
    where
        F: Fn(P::Item) -> R + Sync,
        R: Send,
    {
        /// Collects the mapped results in index order.
        pub fn collect<C: FromParallelIterator<R>>(self) -> C {
            let len = self.producer.len();
            let v = drive(len, || (), |(), i| (self.f)(self.producer.item(i)));
            C::from_ordered_vec(v)
        }

        /// Collects into `target`, replacing its contents.
        pub fn collect_into_vec(self, target: &mut Vec<R>) {
            let v: Vec<R> = self.collect();
            *target = v;
        }
    }

    /// Result of [`ParIter::map_init`].
    pub struct ParMapInit<P, INIT, F> {
        producer: P,
        init: INIT,
        f: F,
    }

    impl<P: Producer, INIT, St, F, R> ParMapInit<P, INIT, F>
    where
        INIT: Fn() -> St + Sync,
        F: Fn(&mut St, P::Item) -> R + Sync,
        R: Send,
    {
        /// Collects the mapped results in index order.
        pub fn collect<C: FromParallelIterator<R>>(self) -> C {
            let len = self.producer.len();
            let v = drive(len, self.init, |state, i| {
                (self.f)(state, self.producer.item(i))
            });
            C::from_ordered_vec(v)
        }

        /// Collects into `target`, replacing its contents.
        pub fn collect_into_vec(self, target: &mut Vec<R>) {
            let v: Vec<R> = self.collect();
            *target = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::iter::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn range_map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u32> = pool.install(|| (0u32..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn map_init_collect_into_vec() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut out = Vec::new();
        pool.install(|| {
            (0u32..37)
                .into_par_iter()
                .map_init(Vec::new, |scratch: &mut Vec<u32>, i| {
                    scratch.push(i); // scratch state is per worker
                    i + 1
                })
                .collect_into_vec(&mut out);
        });
        assert_eq!(out, (1..38).collect::<Vec<u32>>());
    }

    #[test]
    fn slice_par_iter_and_for_each() {
        let data: Vec<u32> = (0..50).collect();
        let sum = AtomicU32::new(0);
        data.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (0..50).sum());
    }

    #[test]
    fn install_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0u32..256).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            });
        });
        // At least one worker beyond the caller should have participated.
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0usize..10).into_par_iter().map(|i| i).collect());
        assert_eq!(out, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_range() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            pool.install(|| {
                (0u32..64).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
    }
}

//! Critical-path reconstruction and per-worker stall attribution.
//!
//! The paper's argument for dynamic scheduling is that skewed slice
//! DAGs leave statically-scheduled workers stalled. This module turns a
//! recorded run into the two numbers that make that argument checkable:
//!
//! * the **speedup ceiling** — from per-slice measured costs and the
//!   slice dependency DAG, compute `T1` (total work), `T∞` (the longest
//!   cost-weighted dependency chain) and Brent's bound
//!   `T1 / max(T1/p, T∞)` on the speedup any schedule can reach with
//!   `p` workers;
//! * the **stall attribution** — split every worker's wall-clock into
//!   busy / dependency-wait / barrier-wait / queue-empty / coordinator
//!   buckets (plus an explicit `untracked` remainder), so the gap
//!   between observed speedup and the ceiling is itemized rather than
//!   inferred.
//!
//! The DAG itself is supplied by the caller as a `deps_of` closure
//! (this crate knows nothing about arc structures); the engine's edge
//! set is the cross product of the two structures' under-arc ranges,
//! the same relation `analysis::audit_levels` proves level-monotone.

use crate::json::Value;
use crate::recorder::{BarrierKind, Event, EventKind};
use std::collections::BTreeMap;

/// Measured cost of one slice, aggregated from its recorded spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceCost {
    /// Row arc (of `S₁`).
    pub k1: u32,
    /// Column arc (of `S₂`).
    pub k2: u32,
    /// Wavefront dependency level.
    pub level: u32,
    /// Measured tabulation time, nanoseconds.
    pub cost_ns: u64,
    /// Compressed cells tabulated.
    pub cells: u64,
}

/// Sums recorded slice spans into one [`SliceCost`] per arc pair,
/// sorted by `(k1, k2)`.
pub fn slice_costs_from_events(events: &[Event]) -> Vec<SliceCost> {
    let mut by_pair: BTreeMap<(u32, u32), SliceCost> = BTreeMap::new();
    for e in events {
        if let EventKind::Slice {
            k1,
            k2,
            level,
            cells,
        } = e.kind
        {
            let entry = by_pair.entry((k1, k2)).or_insert(SliceCost {
                k1,
                k2,
                level,
                cost_ns: 0,
                cells: 0,
            });
            entry.cost_ns += e.dur_ns;
            entry.cells += cells;
            entry.level = entry.level.max(level);
        }
    }
    by_pair.into_values().collect()
}

/// The critical path of a cost-weighted slice DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total work: the sum of all slice costs, nanoseconds.
    pub t1_ns: u64,
    /// Critical-path length: the most expensive dependency chain,
    /// nanoseconds.
    pub t_inf_ns: u64,
    /// The slices on one critical path, dependency order (deepest
    /// dependency first).
    pub path: Vec<SliceCost>,
    /// Number of slices in the DAG.
    pub slices: usize,
}

impl CriticalPath {
    /// The schedule-independent speedup bound `T1 / T∞` (infinite
    /// processors).
    pub fn max_speedup(&self) -> f64 {
        ratio(self.t1_ns, self.t_inf_ns)
    }

    /// Brent's bound on speedup with `p` workers:
    /// `T1 / max(T1/p, T∞)`. Equals `p` while the DAG is wide enough
    /// and saturates at [`CriticalPath::max_speedup`].
    pub fn ceiling(&self, p: u32) -> f64 {
        if self.t1_ns == 0 {
            return 1.0;
        }
        let t1 = self.t1_ns as f64;
        let bound_time = (t1 / f64::from(p.max(1))).max(self.t_inf_ns as f64);
        t1 / bound_time
    }
}

/// Computes the critical path of `costs` under the dependency relation
/// `deps_of`, which must call its sink once per dependency of slice
/// `(k1, k2)`.
///
/// Dependency levels must strictly decrease along edges (the engine's
/// DAG has this by construction — `analysis::audit_levels` proves it);
/// edges violating that, and edges to slices not present in `costs`,
/// are ignored.
pub fn critical_path<F>(costs: &[SliceCost], mut deps_of: F) -> CriticalPath
where
    F: FnMut(u32, u32, &mut dyn FnMut(u32, u32)),
{
    let index: BTreeMap<(u32, u32), usize> = costs
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.k1, s.k2), i))
        .collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (costs[i].level, costs[i].k1, costs[i].k2));

    let mut finish = vec![0u64; costs.len()];
    let mut pred: Vec<Option<usize>> = vec![None; costs.len()];
    for &i in &order {
        let slice = costs[i];
        let mut best: Option<(u64, usize)> = None;
        deps_of(slice.k1, slice.k2, &mut |d1, d2| {
            if let Some(&j) = index.get(&(d1, d2)) {
                if costs[j].level < slice.level && best.is_none_or(|(f, _)| finish[j] > f) {
                    best = Some((finish[j], j));
                }
            }
        });
        finish[i] = slice.cost_ns + best.map_or(0, |(f, _)| f);
        pred[i] = best.map(|(_, j)| j);
    }

    let t1_ns = costs.iter().map(|s| s.cost_ns).sum();
    let sink = (0..costs.len()).max_by_key(|&i| (finish[i], std::cmp::Reverse(i)));
    let t_inf_ns = sink.map_or(0, |i| finish[i]);
    let mut path = Vec::new();
    let mut cursor = sink;
    while let Some(i) = cursor {
        path.push(costs[i]);
        cursor = pred[i];
    }
    path.reverse();
    CriticalPath {
        t1_ns,
        t_inf_ns,
        path,
        slices: costs.len(),
    }
}

/// Where a worker's wall-clock went. Every recorded non-phase span maps
/// to exactly one bucket; `Untracked` is the lane-extent remainder not
/// covered by any span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallBucket {
    /// Slice tabulation (useful work).
    Busy,
    /// Waiting for a dependency to be published (row/level release,
    /// next assignment while work still exists).
    DependencyWait,
    /// Fork/join barriers and `Allreduce` collectives.
    BarrierWait,
    /// Asked the manager for work and none was left in the step.
    QueueEmpty,
    /// Coordinator overhead: installing rows, serving assignments,
    /// settling steps.
    Coordinator,
    /// Lane wall-clock not covered by any recorded span.
    Untracked,
}

impl StallBucket {
    /// Number of buckets (array dimension for per-worker totals).
    pub const COUNT: usize = 6;

    /// Every bucket, in declaration order.
    pub const ALL: [StallBucket; StallBucket::COUNT] = [
        StallBucket::Busy,
        StallBucket::DependencyWait,
        StallBucket::BarrierWait,
        StallBucket::QueueEmpty,
        StallBucket::Coordinator,
        StallBucket::Untracked,
    ];

    /// Stable label used in reports and the JSON twin.
    pub fn name(self) -> &'static str {
        match self {
            StallBucket::Busy => "busy",
            StallBucket::DependencyWait => "dependency-wait",
            StallBucket::BarrierWait => "barrier-wait",
            StallBucket::QueueEmpty => "queue-empty",
            StallBucket::Coordinator => "coordinator",
            StallBucket::Untracked => "untracked",
        }
    }
}

/// The bucket a recorded span belongs to; `None` for phase spans (they
/// envelop other spans on lane 0 and would double-count).
pub fn bucket_of(kind: EventKind) -> Option<StallBucket> {
    match kind {
        EventKind::Phase(_) => None,
        EventKind::Slice { .. } => Some(StallBucket::Busy),
        EventKind::Allreduce { .. } => Some(StallBucket::BarrierWait),
        EventKind::Barrier { kind, .. } => Some(match kind {
            BarrierKind::RowWait | BarrierKind::LevelWait | BarrierKind::TaskWait => {
                StallBucket::DependencyWait
            }
            BarrierKind::RowJoin | BarrierKind::LevelJoin => StallBucket::BarrierWait,
            BarrierKind::RowInstall | BarrierKind::CoordServe => StallBucket::Coordinator,
            BarrierKind::QueueEmpty => StallBucket::QueueEmpty,
        }),
    }
}

/// One lane's wall-clock, split by bucket. The identity
/// `buckets.iter().sum() == wall_ns` holds by construction: `Untracked`
/// is defined as the extent minus every tracked span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStalls {
    /// Trace lane (0 = coordinator, `1..=p` workers).
    pub tid: u32,
    /// Lane extent: first non-phase span start to last span end,
    /// nanoseconds.
    pub wall_ns: u64,
    /// Nanoseconds per bucket, indexed by `StallBucket as usize`.
    pub buckets: [u64; StallBucket::COUNT],
    /// Wait nanoseconds per barrier kind (nonzero entries only), for
    /// headlines like "level-wait on worker 3".
    pub by_kind: Vec<(BarrierKind, u64)>,
}

impl WorkerStalls {
    /// Nanoseconds attributed to `bucket`.
    pub fn bucket(&self, bucket: StallBucket) -> u64 {
        self.buckets[bucket as usize]
    }
}

/// Per-worker stall attribution for one recorded run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StallReport {
    /// One entry per lane that recorded at least one non-phase span,
    /// sorted by lane id.
    pub workers: Vec<WorkerStalls>,
}

impl StallReport {
    /// Builds the attribution from flushed events. Spans within a lane
    /// are assumed non-overlapping (each recording call closes before
    /// the next opens — program order per thread), except phase spans,
    /// which are excluded.
    pub fn build(events: &[Event]) -> StallReport {
        // (first start, last end, per-bucket totals, per-barrier-kind totals).
        type LaneAcc = (
            u64,
            u64,
            [u64; StallBucket::COUNT],
            BTreeMap<BarrierKind, u64>,
        );
        let mut lanes: BTreeMap<u32, LaneAcc> = BTreeMap::new();
        for e in events {
            let Some(bucket) = bucket_of(e.kind) else {
                continue;
            };
            let lane = lanes.entry(e.tid).or_insert((
                u64::MAX,
                0,
                [0; StallBucket::COUNT],
                BTreeMap::new(),
            ));
            lane.0 = lane.0.min(e.start_ns);
            lane.1 = lane.1.max(e.end_ns());
            lane.2[bucket as usize] += e.dur_ns;
            if let EventKind::Barrier { kind, .. } = e.kind {
                *lane.3.entry(kind).or_insert(0) += e.dur_ns;
            }
        }
        let workers = lanes
            .into_iter()
            .map(|(tid, (first, last, mut buckets, by_kind))| {
                let wall_ns = last.saturating_sub(first);
                let tracked: u64 = buckets.iter().sum();
                buckets[StallBucket::Untracked as usize] = wall_ns.saturating_sub(tracked);
                // Overlapping spans would make tracked exceed the
                // extent; clamp the wall up so the sum identity holds
                // even on malformed input.
                let wall_ns = wall_ns.max(buckets.iter().sum());
                WorkerStalls {
                    tid,
                    wall_ns,
                    buckets,
                    by_kind: by_kind.into_iter().collect(),
                }
            })
            .collect();
        StallReport { workers }
    }

    /// Total nanoseconds in `bucket` across all lanes.
    pub fn total(&self, bucket: StallBucket) -> u64 {
        self.workers.iter().map(|w| w.bucket(bucket)).sum()
    }

    /// Total lane wall-clock across all lanes.
    pub fn total_wall(&self) -> u64 {
        self.workers.iter().map(|w| w.wall_ns).sum()
    }

    /// Wall-clock not spent busy, across all lanes ("lost time").
    pub fn lost_ns(&self) -> u64 {
        self.total_wall()
            .saturating_sub(self.total(StallBucket::Busy))
    }

    /// The single largest `(kind, lane)` wait cell — the headline
    /// stall. `None` when no barrier time was recorded.
    pub fn dominant_stall(&self) -> Option<(BarrierKind, u32, u64)> {
        self.workers
            .iter()
            .flat_map(|w| w.by_kind.iter().map(move |&(k, ns)| (k, w.tid, ns)))
            .filter(|&(_, _, ns)| ns > 0)
            .max_by_key(|&(_, tid, ns)| (ns, std::cmp::Reverse(tid)))
    }
}

/// The full "why was this run this fast" story: ceiling, observation,
/// and itemized stalls. Built by `srna explain`; renders as text and as
/// a machine-readable JSON twin with the same numbers.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Backend name (`<schedule>-<store>[-<dist>]`).
    pub backend: String,
    /// Slice kernel name.
    pub kernel: String,
    /// Worker count the run used.
    pub threads: u32,
    /// Critical path of the measured slice DAG.
    pub critical_path: CriticalPath,
    /// Stage-one wall-clock of the run, nanoseconds.
    pub wall_ns: u64,
    /// Per-worker stall attribution.
    pub stalls: StallReport,
}

impl Explanation {
    /// Observed stage-one speedup: `T1 / wall`.
    pub fn observed_speedup(&self) -> f64 {
        ratio(self.critical_path.t1_ns, self.wall_ns)
    }

    /// One-line verdict, e.g. "observed 3.1× of a 4.6× ceiling; 22% of
    /// lost time is level-wait on worker 3".
    pub fn headline(&self) -> String {
        let mut line = format!(
            "observed {:.1}× of a {:.1}× ceiling",
            self.observed_speedup(),
            self.critical_path.ceiling(self.threads)
        );
        let lost = self.stalls.lost_ns();
        if let Some((kind, tid, ns)) = self.stalls.dominant_stall() {
            if lost > 0 {
                line.push_str(&format!(
                    "; {:.0}% of lost time is {} on worker {}",
                    100.0 * ns as f64 / lost as f64,
                    kind.name(),
                    tid
                ));
            }
        }
        line
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let cp = &self.critical_path;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain: backend={} kernel={} threads={}",
            self.backend, self.kernel, self.threads
        );
        let _ = writeln!(
            out,
            "  work T1 = {} over {} slices; critical path T∞ = {} across {} slices",
            fmt_ns(cp.t1_ns),
            cp.slices,
            fmt_ns(cp.t_inf_ns),
            cp.path.len()
        );
        let _ = writeln!(
            out,
            "  speedup ceiling: {:.2}× at p={} (Brent), {:.2}× at p=∞",
            cp.ceiling(self.threads),
            self.threads,
            cp.max_speedup()
        );
        let _ = writeln!(
            out,
            "  observed: {:.2}× (stage-one wall {})",
            self.observed_speedup(),
            fmt_ns(self.wall_ns)
        );
        let _ = writeln!(out, "  {}", self.headline());
        let _ = writeln!(out, "  per-worker wall-clock attribution:");
        for w in &self.stalls.workers {
            let role = if w.tid == 0 { "coord " } else { "worker" };
            let _ = write!(
                out,
                "    {role} {:>2}  wall {:>10}",
                w.tid,
                fmt_ns(w.wall_ns)
            );
            for bucket in StallBucket::ALL {
                let ns = w.bucket(bucket);
                if ns > 0 || bucket == StallBucket::Busy {
                    let pct = if w.wall_ns > 0 {
                        100.0 * ns as f64 / w.wall_ns as f64
                    } else {
                        0.0
                    };
                    let _ = write!(out, "  {} {pct:.0}%", bucket.name());
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The machine-readable twin of [`Explanation::render`].
    pub fn to_json(&self) -> Value {
        let cp = &self.critical_path;
        let path = cp
            .path
            .iter()
            .map(|s| {
                Value::object([
                    ("k1".to_string(), Value::from(s.k1)),
                    ("k2".to_string(), Value::from(s.k2)),
                    ("level".to_string(), Value::from(s.level)),
                    ("cost_ns".to_string(), Value::from(s.cost_ns)),
                    ("cells".to_string(), Value::from(s.cells)),
                ])
            })
            .collect();
        let workers = self
            .stalls
            .workers
            .iter()
            .map(|w| {
                let mut members = vec![
                    ("tid".to_string(), Value::from(w.tid)),
                    ("wall_ns".to_string(), Value::from(w.wall_ns)),
                ];
                for bucket in StallBucket::ALL {
                    members.push((
                        format!("{}_ns", bucket.name().replace('-', "_")),
                        Value::from(w.bucket(bucket)),
                    ));
                }
                members.push((
                    "by_kind".to_string(),
                    Value::object(
                        w.by_kind
                            .iter()
                            .map(|&(k, ns)| (k.name().to_string(), Value::from(ns))),
                    ),
                ));
                Value::object(members)
            })
            .collect();
        let dominant = match self.stalls.dominant_stall() {
            None => Value::Null,
            Some((kind, tid, ns)) => {
                let lost = self.stalls.lost_ns();
                Value::object([
                    ("kind".to_string(), Value::from(kind.name())),
                    ("tid".to_string(), Value::from(tid)),
                    ("ns".to_string(), Value::from(ns)),
                    (
                        "share_of_lost".to_string(),
                        Value::from(if lost > 0 {
                            ns as f64 / lost as f64
                        } else {
                            0.0
                        }),
                    ),
                ])
            }
        };
        Value::object([
            ("schema_version".to_string(), Value::from(1u64)),
            ("backend".to_string(), Value::from(self.backend.as_str())),
            ("kernel".to_string(), Value::from(self.kernel.as_str())),
            ("threads".to_string(), Value::from(self.threads)),
            ("t1_ns".to_string(), Value::from(cp.t1_ns)),
            ("t_inf_ns".to_string(), Value::from(cp.t_inf_ns)),
            ("slices".to_string(), Value::from(cp.slices)),
            ("max_speedup".to_string(), Value::from(cp.max_speedup())),
            ("ceiling".to_string(), Value::from(cp.ceiling(self.threads))),
            (
                "observed_speedup".to_string(),
                Value::from(self.observed_speedup()),
            ),
            ("wall_ns".to_string(), Value::from(self.wall_ns)),
            ("headline".to_string(), Value::from(self.headline())),
            ("critical_path".to_string(), Value::Array(path)),
            ("workers".to_string(), Value::Array(workers)),
            ("lost_ns".to_string(), Value::from(self.stalls.lost_ns())),
            ("dominant_stall".to_string(), dominant),
        ])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Phase;

    fn slice(k1: u32, k2: u32, level: u32, cost_ns: u64) -> SliceCost {
        SliceCost {
            k1,
            k2,
            level,
            cost_ns,
            cells: cost_ns / 10,
        }
    }

    /// `(node, its dependencies)` adjacency pairs.
    type Edges = Vec<((u32, u32), Vec<(u32, u32)>)>;

    /// Diamond: D depends on B and C, both depend on A.
    ///   A(10) → B(5), A → C(7), {B, C} → D(3)
    /// T1 = 25, T∞ = A + C + D = 20.
    fn diamond() -> (Vec<SliceCost>, Edges) {
        let costs = vec![
            slice(0, 0, 0, 10), // A
            slice(1, 0, 1, 5),  // B
            slice(1, 1, 1, 7),  // C
            slice(2, 0, 2, 3),  // D
        ];
        let edges = vec![
            ((1, 0), vec![(0, 0)]),
            ((1, 1), vec![(0, 0)]),
            ((2, 0), vec![(1, 0), (1, 1)]),
        ];
        (costs, edges)
    }

    fn deps_from(edges: &Edges) -> impl FnMut(u32, u32, &mut dyn FnMut(u32, u32)) + '_ {
        move |k1, k2, sink| {
            for (node, deps) in edges {
                if *node == (k1, k2) {
                    for &(d1, d2) in deps {
                        sink(d1, d2);
                    }
                }
            }
        }
    }

    #[test]
    fn diamond_has_known_t1_t_inf_and_path() {
        let (costs, edges) = diamond();
        let cp = critical_path(&costs, deps_from(&edges));
        assert_eq!(cp.t1_ns, 25);
        assert_eq!(cp.t_inf_ns, 20);
        assert_eq!(cp.slices, 4);
        let path: Vec<(u32, u32)> = cp.path.iter().map(|s| (s.k1, s.k2)).collect();
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn brent_ceiling_matches_hand_computation() {
        let (costs, edges) = diamond();
        let cp = critical_path(&costs, deps_from(&edges));
        // p=1: bound is T1 itself.
        assert!((cp.ceiling(1) - 1.0).abs() < 1e-12);
        // p=2: T1/p = 12.5 < T∞ = 20, so the chain binds: 25/20.
        assert!((cp.ceiling(2) - 1.25).abs() < 1e-12);
        // p=∞ equivalent.
        assert!((cp.max_speedup() - 1.25).abs() < 1e-12);
        // Huge p changes nothing once the chain binds.
        assert!((cp.ceiling(64) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn independent_slices_scale_linearly_until_saturation() {
        let costs: Vec<SliceCost> = (0..8).map(|i| slice(i, 0, 0, 10)).collect();
        let cp = critical_path(&costs, |_, _, _| {});
        assert_eq!(cp.t1_ns, 80);
        assert_eq!(cp.t_inf_ns, 10);
        assert!((cp.ceiling(4) - 4.0).abs() < 1e-12);
        assert!((cp.ceiling(8) - 8.0).abs() < 1e-12);
        assert!((cp.ceiling(16) - 8.0).abs() < 1e-12);
        assert_eq!(cp.path.len(), 1);
    }

    #[test]
    fn chain_dag_has_no_parallelism() {
        let costs: Vec<SliceCost> = (0..5).map(|i| slice(i, 0, i, 7)).collect();
        let cp = critical_path(&costs, |k1, _, sink| {
            if k1 > 0 {
                sink(k1 - 1, 0);
            }
        });
        assert_eq!(cp.t1_ns, 35);
        assert_eq!(cp.t_inf_ns, 35);
        assert_eq!(cp.path.len(), 5);
        assert!((cp.ceiling(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dag_is_degenerate_but_finite() {
        let cp = critical_path(&[], |_, _, _| {});
        assert_eq!(cp.t1_ns, 0);
        assert_eq!(cp.t_inf_ns, 0);
        assert!(cp.path.is_empty());
        assert!((cp.ceiling(4) - 1.0).abs() < 1e-12);
        assert!((cp.max_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_to_unknown_or_same_level_slices_are_ignored() {
        let costs = vec![slice(0, 0, 1, 10), slice(1, 0, 1, 4)];
        // (1,0) claims deps on a missing slice and a same-level one.
        let cp = critical_path(&costs, |k1, _, sink| {
            if k1 == 1 {
                sink(9, 9);
                sink(0, 0);
            }
        });
        assert_eq!(cp.t_inf_ns, 10);
    }

    #[test]
    fn slice_costs_aggregate_by_pair() {
        let ev = |k1, k2, level, start, dur, cells| Event {
            tid: 1,
            seq: 0,
            start_ns: start,
            dur_ns: dur,
            kind: EventKind::Slice {
                k1,
                k2,
                level,
                cells,
            },
        };
        let costs = slice_costs_from_events(&[
            ev(2, 1, 1, 0, 100, 10),
            ev(0, 0, 0, 100, 50, 5),
            ev(2, 1, 1, 200, 25, 3),
        ]);
        assert_eq!(
            costs,
            vec![
                SliceCost {
                    k1: 0,
                    k2: 0,
                    level: 0,
                    cost_ns: 50,
                    cells: 5
                },
                SliceCost {
                    k1: 2,
                    k2: 1,
                    level: 1,
                    cost_ns: 125,
                    cells: 13
                },
            ]
        );
    }

    fn barrier(tid: u32, seq: u32, start: u64, dur: u64, kind: BarrierKind) -> Event {
        Event {
            tid,
            seq,
            start_ns: start,
            dur_ns: dur,
            kind: EventKind::Barrier { kind, index: 0 },
        }
    }

    fn busy(tid: u32, seq: u32, start: u64, dur: u64) -> Event {
        Event {
            tid,
            seq,
            start_ns: start,
            dur_ns: dur,
            kind: EventKind::Slice {
                k1: 0,
                k2: 0,
                level: 0,
                cells: 1,
            },
        }
    }

    #[test]
    fn stall_buckets_sum_to_wall_with_known_totals() {
        // Worker 1: [0,40) busy, [40,60) level-wait, [70,100) level-join
        //   → wall 100, busy 40, dep-wait 20, barrier 30, untracked 10.
        // Worker 2: [10,20) queue-empty, [20,50) busy → wall 40.
        // Lane 0: phase span must be excluded; coord-serve counted.
        let events = vec![
            busy(1, 0, 0, 40),
            barrier(1, 1, 40, 20, BarrierKind::LevelWait),
            barrier(1, 2, 70, 30, BarrierKind::LevelJoin),
            barrier(2, 0, 10, 10, BarrierKind::QueueEmpty),
            busy(2, 1, 20, 30),
            Event {
                tid: 0,
                seq: 0,
                start_ns: 0,
                dur_ns: 500,
                kind: EventKind::Phase(Phase::StageOne),
            },
            barrier(0, 1, 0, 15, BarrierKind::CoordServe),
        ];
        let report = StallReport::build(&events);
        assert_eq!(report.workers.len(), 3);

        let w1 = &report.workers[1];
        assert_eq!(w1.tid, 1);
        assert_eq!(w1.wall_ns, 100);
        assert_eq!(w1.bucket(StallBucket::Busy), 40);
        assert_eq!(w1.bucket(StallBucket::DependencyWait), 20);
        assert_eq!(w1.bucket(StallBucket::BarrierWait), 30);
        assert_eq!(w1.bucket(StallBucket::Untracked), 10);

        let w2 = &report.workers[2];
        assert_eq!(w2.wall_ns, 40);
        assert_eq!(w2.bucket(StallBucket::QueueEmpty), 10);
        assert_eq!(w2.bucket(StallBucket::Busy), 30);
        assert_eq!(w2.bucket(StallBucket::Untracked), 0);

        let coord = &report.workers[0];
        assert_eq!(coord.wall_ns, 15, "phase span must not widen lane 0");
        assert_eq!(coord.bucket(StallBucket::Coordinator), 15);

        for w in &report.workers {
            assert_eq!(
                w.buckets.iter().sum::<u64>(),
                w.wall_ns,
                "bucket identity broken on lane {}",
                w.tid
            );
        }
        assert_eq!(report.total_wall(), 155);
        assert_eq!(report.lost_ns(), 155 - 70);
        assert_eq!(
            report.dominant_stall(),
            Some((BarrierKind::LevelJoin, 1, 30))
        );
    }

    #[test]
    fn every_non_phase_event_kind_has_a_bucket() {
        assert_eq!(bucket_of(EventKind::Phase(Phase::StageOne)), None);
        assert_eq!(
            bucket_of(EventKind::Slice {
                k1: 0,
                k2: 0,
                level: 0,
                cells: 0
            }),
            Some(StallBucket::Busy)
        );
        assert_eq!(
            bucket_of(EventKind::Allreduce { elems: 1, bytes: 8 }),
            Some(StallBucket::BarrierWait)
        );
        for kind in BarrierKind::ALL {
            let bucket = bucket_of(EventKind::Barrier { kind, index: 0 });
            assert!(bucket.is_some(), "{} has no bucket", kind.name());
            assert_ne!(bucket, Some(StallBucket::Busy));
            assert_ne!(bucket, Some(StallBucket::Untracked));
        }
    }

    #[test]
    fn explanation_renders_headline_and_json_twin_agrees() {
        let (costs, edges) = diamond();
        let critical_path = critical_path(&costs, deps_from(&edges));
        let events = vec![
            busy(1, 0, 0, 15),
            barrier(1, 1, 15, 5, BarrierKind::LevelWait),
            busy(2, 0, 0, 10),
            barrier(2, 1, 10, 10, BarrierKind::LevelJoin),
        ];
        let explanation = Explanation {
            backend: "level-lockfree".to_string(),
            kernel: "scalar".to_string(),
            threads: 2,
            critical_path,
            wall_ns: 20,
            stalls: StallReport::build(&events),
        };
        // T1 = 25, wall = 20 → observed 1.25×; ceiling(2) = 1.25×.
        assert!((explanation.observed_speedup() - 1.25).abs() < 1e-12);
        let headline = explanation.headline();
        assert!(
            headline.contains("observed 1.2× of a 1.2× ceiling"),
            "{headline}"
        );
        assert!(headline.contains("level-join on worker 2"), "{headline}");

        let doc = explanation.to_json();
        assert_eq!(doc.get("t1_ns").and_then(Value::as_f64), Some(25.0));
        assert_eq!(doc.get("t_inf_ns").and_then(Value::as_f64), Some(20.0));
        assert_eq!(doc.get("threads").and_then(Value::as_f64), Some(2.0));
        let workers = doc
            .get("workers")
            .and_then(Value::as_array)
            .expect("workers");
        assert_eq!(workers.len(), 2);
        for w in workers {
            let wall = w.get("wall_ns").and_then(Value::as_f64).expect("wall");
            let sum: f64 = StallBucket::ALL
                .iter()
                .map(|b| {
                    w.get(&format!("{}_ns", b.name().replace('-', "_")))
                        .and_then(Value::as_f64)
                        .expect("bucket field")
                })
                .sum();
            assert_eq!(wall, sum, "JSON buckets must sum to wall");
        }
        // The twin re-parses as valid JSON.
        let text = doc.to_json_pretty();
        assert_eq!(crate::json::parse(&text).expect("round trip"), doc);
        // Render mentions the ceiling table and every worker.
        let rendered = explanation.render();
        assert!(rendered.contains("speedup ceiling"));
        assert!(rendered.contains("worker  1"));
    }
}

//! A minimal, dependency-free JSON parser and emitter.
//!
//! Exists so the trace-export schema tests (and any downstream tooling)
//! can validate emitted documents without pulling a serialization
//! framework into the workspace. Supports the full JSON grammar with
//! the usual practical limits: numbers parse to `f64` and nesting depth
//! is capped to keep recursion bounded.
//!
//! Emission goes through [`Value::to_json`] / [`Value::to_json_pretty`];
//! every artifact writer in the workspace (bench envelopes, `srna
//! explain --json`, metric snapshots) builds a [`Value`] and serializes
//! it here, so documents round-trip through the same grammar the schema
//! tests parse.

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object members keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as (key, value) pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A string value (convenience constructor).
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// A number value. `u64` counters above 2^53 lose precision in the
    /// `f64` representation, like every JSON number does.
    pub fn number(n: f64) -> Value {
        Value::Number(n)
    }

    /// An object from `(key, value)` pairs, keeping the given order.
    pub fn object(members: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(members.into_iter().collect())
    }

    /// Serializes this value on one line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes this value with two-space indentation and a trailing
    /// newline, the style every committed artifact in the repo uses.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let code = self.hex4()?;
        if (0xD800..0xDC00).contains(&code) {
            // High surrogate: must pair with \uDC00..DFFF.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&code) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u code point"))
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"a b\"").unwrap(), Value::String("a b".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let a = doc.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(doc.get("c").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""\"\\\n\t\u0041""#).unwrap(),
            Value::String("\"\\\n\tA".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1F600}".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Value::String("héllo".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\"}",
            "\"\\x\"",
            "1 2",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn emits_compact_documents() {
        let doc = Value::object([
            ("n".to_string(), Value::from(3u64)),
            ("x".to_string(), Value::from(0.5)),
            ("s".to_string(), Value::from("a\"b\nc")),
            ("a".to_string(), Value::from(vec![1u64, 2])),
            ("none".to_string(), Value::Null),
            ("ok".to_string(), Value::from(true)),
        ]);
        assert_eq!(
            doc.to_json(),
            "{\"n\":3,\"x\":0.5,\"s\":\"a\\\"b\\nc\",\"a\":[1,2],\"none\":null,\"ok\":true}"
        );
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Value::from(0u64).to_json(), "0");
        assert_eq!(Value::Number(-7.0).to_json(), "-7");
        assert_eq!(Value::Number(1.0e15).to_json(), "1000000000000000");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn emitted_documents_round_trip_through_parse() {
        let doc = Value::object([
            ("schema_version".to_string(), Value::from(1u64)),
            (
                "metrics".to_string(),
                Value::Array(vec![Value::object([
                    ("name".to_string(), Value::from("mcos.engine.cells_total")),
                    ("value".to_string(), Value::from(123456u64)),
                ])]),
            ),
            ("note".to_string(), Value::from("tabs\there \u{1F600}")),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on {text:?}");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_newline_terminated() {
        let doc = Value::object([("a".to_string(), Value::from(vec![1u64]))]);
        assert_eq!(doc.to_json_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Value::Object(vec![]).to_json_pretty(), "{}\n");
    }
}

//! Telemetry for the MCOS backends: spans, load/barrier metrics, and
//! Chrome/Perfetto trace export.
//!
//! The paper's empirical argument is entirely about *where parallel time
//! goes* — per-processor load under Graham's list scheduling, barrier
//! synchronization per memo row, and `Allreduce` cost (Fig. 7/8,
//! Tables 1–3). This crate makes those quantities observable on every
//! backend without perturbing the timings the benchmarks report:
//!
//! * [`Recorder`] — a cloneable handle that is either *disabled* (the
//!   default: every operation is a branch on `None` and nothing else —
//!   no clock reads, no allocation, no atomics) or *enabled* (events
//!   accumulate in per-thread buffers and counters in shared atomics).
//! * [`WorkerLog`] — the per-thread event buffer. Workers append spans
//!   to a plain `Vec` with no synchronization; the buffer is flushed
//!   into the shared sink once, when the log is dropped at thread exit.
//! * [`trace::chrome_trace_json`] — serializes recorded events in the
//!   Chrome trace-event format that Perfetto and `chrome://tracing`
//!   accept.
//! * [`report::LoadReport`] — per-worker busy/wait accounting with the
//!   observed imbalance next to the Graham-bound prediction from the
//!   `load-balance` crate, reproducing the shape of the paper's
//!   Fig. 7/8 analysis.
//! * [`json`] — a dependency-free JSON parser and emitter, used by the
//!   schema tests and by every artifact writer in the workspace.
//! * [`critical_path`] — reconstructs the slice-DAG critical path from
//!   measured costs (T1, T∞, Brent's speedup ceiling) and attributes
//!   each worker's wall-clock to busy/wait/overhead buckets; backs
//!   `srna explain`.
//! * [`metrics`] — the typed counter/gauge/histogram registry with the
//!   workspace's stable metric-name schema.
//! * [`mem`] — arena-tagged allocation accounting (live/peak bytes per
//!   memo/scratch/trace/other arena) and, behind the `mem-profile`
//!   feature, the [`mem::CountingAlloc`] global-allocator wrapper a
//!   binary can install to feed those counters.
//! * [`liveness`] — the level-liveness model of the slice DAG: which
//!   memo cells are still needed while each dependency level settles,
//!   the resident-set trajectory, and the theoretical floor behind
//!   `srna explain --memory`.
//!
//! # Overhead policy
//!
//! The hot path of every backend may call the recorder once per slice.
//! The rules that keep this safe to leave compiled in:
//!
//! 1. a disabled recorder performs no clock read, no allocation, and no
//!    atomic operation (asserted by the crate's zero-overhead test);
//! 2. an enabled recorder touches only thread-local state per event —
//!    the shared sink is locked once per thread, at flush;
//! 3. per-slice detail (level, cell count) is computed by a caller
//!    closure that never runs when disabled.

// The counting allocator (`mem-profile` only) is the one place this
// crate needs `unsafe`: a `GlobalAlloc` impl forwarding to `System`.
// Everything else stays forbidden; under the feature the ban relaxes
// to `deny` so `mem::counting` alone can opt out with a SAFETY record.
#![cfg_attr(not(feature = "mem-profile"), forbid(unsafe_code))]
#![cfg_attr(feature = "mem-profile", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod critical_path;
pub mod json;
pub mod liveness;
pub mod mem;
pub mod metrics;
mod recorder;
pub mod report;
pub mod trace;

pub use recorder::{
    BarrierKind, CounterSnapshot, Event, EventKind, Phase, Recorder, SpanStart, WorkerLog,
};

//! Level-liveness analysis of the slice DAG and the memory report.
//!
//! Stage one settles the memo grid one dependency level at a time, so
//! a memo cell's lifetime is an *interval of levels*: it is born when
//! its own level is tabulated and it is dead once the last level that
//! reads it has settled (`last_needed = max(own level, max reader
//! level)`). Summing cells whose interval covers each level gives the
//! resident-set trajectory, and its maximum is the **theoretical
//! floor**: the smallest number of cells any stage-one store that
//! evicts dead levels could keep resident. That floor is the
//! measurement half of the linear-space roadmap item (Bille & Gørtz,
//! arXiv:0911.0577) — today's stores keep everything, and the gap
//! between peak and floor is exactly what eviction can reclaim.
//!
//! The floor is a *stage-one* bound: stage two's sequential traceback
//! re-reads arbitrary memo cells, so an evicting store must either
//! spill or recompute for stage two (Hirschberg-style). The report
//! states what the floor promises — no schedule of stage one alone can
//! hold fewer cells — and nothing more.
//!
//! Like `critical_path`, the DAG arrives as a `deps_of` closure; this
//! crate knows nothing about arc structures.

use crate::json::Value;
use std::collections::BTreeMap;

/// One memo cell (child slice) in the liveness analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceNode {
    /// Row arc (of `S₁`).
    pub k1: u32,
    /// Column arc (of `S₂`).
    pub k2: u32,
    /// Wavefront dependency level (the step that writes the cell).
    pub level: u32,
}

/// The resident-set trajectory of the slice DAG over dependency
/// levels, and its maximum — the theoretical floor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LevelLiveness {
    /// Number of dependency levels (steps); resident has this length.
    pub levels: u32,
    /// Total cells written (one per slice in the DAG).
    pub cells: u64,
    /// Cells resident while each level settles, indexed by level.
    pub resident: Vec<u64>,
    /// `max(resident)` — the smallest resident set stage one admits.
    pub floor_cells: u64,
    /// The first level attaining `floor_cells`.
    pub floor_level: u32,
}

impl LevelLiveness {
    /// Resident cells while `level` settles (zero out of range).
    pub fn resident_at(&self, level: u32) -> u64 {
        self.resident.get(level as usize).copied().unwrap_or(0)
    }
}

/// Computes the level-liveness trajectory of `nodes` under the
/// dependency relation `deps_of`, which must call its sink once per
/// dependency of slice `(k1, k2)`.
///
/// A cell is resident from its own level through the highest level
/// that reads it. Edges to slices not present in `nodes` are ignored;
/// dependency levels are expected to strictly decrease along edges
/// (readers are *above* their dependencies), so an edge whose reader
/// is not above the dependency only extends the dependency's lifetime
/// upward, never shrinks it.
pub fn level_liveness<F>(nodes: &[SliceNode], mut deps_of: F) -> LevelLiveness
where
    F: FnMut(u32, u32, &mut dyn FnMut(u32, u32)),
{
    if nodes.is_empty() {
        return LevelLiveness::default();
    }
    let index: BTreeMap<(u32, u32), usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ((n.k1, n.k2), i))
        .collect();
    let mut last_needed: Vec<u32> = nodes.iter().map(|n| n.level).collect();
    for node in nodes {
        deps_of(node.k1, node.k2, &mut |d1, d2| {
            if let Some(&j) = index.get(&(d1, d2)) {
                last_needed[j] = last_needed[j].max(node.level);
            }
        });
    }
    let levels = nodes.iter().map(|n| n.level).max().unwrap_or(0) + 1;
    // Residency intervals via a +1/-1 difference array over levels.
    let mut diff = vec![0i64; levels as usize + 1];
    for (node, &last) in nodes.iter().zip(&last_needed) {
        diff[node.level as usize] += 1;
        diff[last as usize + 1] -= 1;
    }
    let mut resident = Vec::with_capacity(levels as usize);
    let mut running = 0i64;
    for d in &diff[..levels as usize] {
        running += d;
        resident.push(running.max(0) as u64);
    }
    let (floor_level, floor_cells) = resident
        .iter()
        .enumerate()
        .max_by_key(|&(i, &r)| (r, std::cmp::Reverse(i)))
        .map(|(i, &r)| (i as u32, r))
        .unwrap_or((0, 0));
    LevelLiveness {
        levels,
        cells: nodes.len() as u64,
        resident,
        floor_cells,
        floor_level,
    }
}

/// The full memory story of one run: physical occupancy from the
/// recorded counters, the model floor from the liveness analysis, and
/// (when available) allocator and RSS measurements. Built by
/// `srna explain --memory`; renders as text and as a schema-versioned
/// JSON twin with the same numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Backend name (`<schedule>-<store>[-<dist>]`).
    pub backend: String,
    /// Slice kernel name.
    pub kernel: String,
    /// Worker count the run used.
    pub threads: u32,
    /// Bytes per memo cell (4: the score grid is `u32`).
    pub cell_bytes: u64,
    /// Physical memo cells the store allocated, replicas included.
    pub cells_allocated: u64,
    /// Physical memo cells ever written.
    pub cells_written: u64,
    /// The liveness trajectory of the run's slice DAG.
    pub liveness: LevelLiveness,
    /// High-water mark of per-worker scratch bytes.
    pub scratch_bytes_peak: u64,
    /// Scratch/staging buffer allocations the run performed.
    pub scratch_allocs: u64,
    /// Peak live bytes seen by the counting allocator (0 when no
    /// `mem-profile` allocator is installed).
    pub alloc_live_peak_bytes: u64,
    /// Process peak RSS in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
    /// Logical memo cells dropped by the retention contract (0 for
    /// unbounded runs).
    pub evicted_cells: u64,
    /// Child slices re-tabulated to service reads of evicted cells.
    pub recompute_slices: u64,
    /// Grid cells tabulated during those recomputations.
    pub recompute_cells: u64,
    /// Peak logically resident memo cells under the retention plan
    /// (0 when no plan drove the run).
    pub resident_cells_peak: u64,
}

impl MemoryReport {
    /// Peak memo footprint: every allocated cell, in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.cells_allocated * self.cell_bytes
    }

    /// The theoretical floor in bytes: the liveness maximum.
    pub fn floor_bytes(&self) -> u64 {
        self.liveness.floor_cells * self.cell_bytes
    }

    /// Written / allocated cells (1.0 for today's dense stores).
    pub fn occupancy(&self) -> f64 {
        if self.cells_allocated == 0 {
            0.0
        } else {
            self.cells_written as f64 / self.cells_allocated as f64
        }
    }

    /// Floor / peak: the fraction of the peak an evicting store must
    /// keep. The complement is what eviction can reclaim.
    pub fn floor_share(&self) -> f64 {
        if self.peak_bytes() == 0 {
            0.0
        } else {
            self.floor_bytes() as f64 / self.peak_bytes() as f64
        }
    }

    /// One-line verdict, e.g. "peak 1.00 MiB, theoretical floor
    /// 0.12 MiB; level 9 holds 12% of peak".
    pub fn headline(&self) -> String {
        format!(
            "peak {} MiB, theoretical floor {} MiB; level {} holds {:.0}% of peak",
            fmt_mib(self.peak_bytes()),
            fmt_mib(self.floor_bytes()),
            self.liveness.floor_level,
            100.0 * self.floor_share()
        )
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "memory: backend={} kernel={} threads={}",
            self.backend, self.kernel, self.threads
        );
        let _ = writeln!(
            out,
            "  memo: {} cells allocated ({} MiB), {} written (occupancy {:.0}%), {} B/cell",
            self.cells_allocated,
            fmt_mib(self.peak_bytes()),
            self.cells_written,
            100.0 * self.occupancy(),
            self.cell_bytes
        );
        let _ = writeln!(out, "  {}", self.headline());
        let _ = writeln!(
            out,
            "  liveness over {} levels ({} DAG cells):",
            self.liveness.levels, self.liveness.cells
        );
        let peak = self.liveness.floor_cells.max(1);
        const MAX_ROWS: usize = 16;
        let shown = self.liveness.resident.len().min(MAX_ROWS);
        for (level, &resident) in self.liveness.resident.iter().take(shown).enumerate() {
            let _ = writeln!(
                out,
                "    level {level:>3}  resident {resident:>8} cells  {:>9} MiB  {:>3.0}% of floor{}",
                fmt_mib(resident * self.cell_bytes),
                100.0 * resident as f64 / peak as f64,
                if level as u32 == self.liveness.floor_level {
                    "  <- floor"
                } else {
                    ""
                }
            );
        }
        if self.liveness.resident.len() > shown {
            let _ = writeln!(
                out,
                "    ... {} more levels",
                self.liveness.resident.len() - shown
            );
        }
        let _ = writeln!(
            out,
            "  scratch: peak {} MiB across workers, {} buffer allocations",
            fmt_mib(self.scratch_bytes_peak),
            self.scratch_allocs
        );
        if self.alloc_live_peak_bytes > 0 {
            let _ = writeln!(
                out,
                "  allocator: live peak {} MiB (mem-profile)",
                fmt_mib(self.alloc_live_peak_bytes)
            );
        } else {
            let _ = writeln!(
                out,
                "  allocator: not installed (build with --features mem-profile)"
            );
        }
        if self.evicted_cells > 0 || self.resident_cells_peak > 0 {
            let _ = writeln!(
                out,
                "  retention: {} cells evicted, resident peak {} cells ({} MiB); \
                 recomputed {} slices / {} cells on miss",
                self.evicted_cells,
                self.resident_cells_peak,
                fmt_mib(self.resident_cells_peak * self.cell_bytes),
                self.recompute_slices,
                self.recompute_cells
            );
        }
        if self.peak_rss_bytes > 0 {
            let _ = writeln!(
                out,
                "  process peak RSS: {} MiB",
                fmt_mib(self.peak_rss_bytes)
            );
        }
        out
    }

    /// The machine-readable twin of [`MemoryReport::render`].
    pub fn to_json(&self) -> Value {
        let resident = self
            .liveness
            .resident
            .iter()
            .map(|&r| Value::from(r))
            .collect();
        Value::object([
            ("schema_version".to_string(), Value::from(1u64)),
            ("backend".to_string(), Value::from(self.backend.as_str())),
            ("kernel".to_string(), Value::from(self.kernel.as_str())),
            ("threads".to_string(), Value::from(self.threads)),
            ("cell_bytes".to_string(), Value::from(self.cell_bytes)),
            (
                "cells_allocated".to_string(),
                Value::from(self.cells_allocated),
            ),
            ("cells_written".to_string(), Value::from(self.cells_written)),
            ("peak_bytes".to_string(), Value::from(self.peak_bytes())),
            ("floor_bytes".to_string(), Value::from(self.floor_bytes())),
            ("occupancy".to_string(), Value::from(self.occupancy())),
            ("floor_share".to_string(), Value::from(self.floor_share())),
            ("levels".to_string(), Value::from(self.liveness.levels)),
            ("dag_cells".to_string(), Value::from(self.liveness.cells)),
            (
                "floor_cells".to_string(),
                Value::from(self.liveness.floor_cells),
            ),
            (
                "floor_level".to_string(),
                Value::from(self.liveness.floor_level),
            ),
            ("resident".to_string(), Value::Array(resident)),
            (
                "scratch_bytes_peak".to_string(),
                Value::from(self.scratch_bytes_peak),
            ),
            (
                "scratch_allocs".to_string(),
                Value::from(self.scratch_allocs),
            ),
            (
                "alloc_live_peak_bytes".to_string(),
                Value::from(self.alloc_live_peak_bytes),
            ),
            (
                "peak_rss_bytes".to_string(),
                Value::from(self.peak_rss_bytes),
            ),
            ("evicted_cells".to_string(), Value::from(self.evicted_cells)),
            (
                "recompute_slices".to_string(),
                Value::from(self.recompute_slices),
            ),
            (
                "recompute_cells".to_string(),
                Value::from(self.recompute_cells),
            ),
            (
                "resident_cells_peak".to_string(),
                Value::from(self.resident_cells_peak),
            ),
            ("headline".to_string(), Value::from(self.headline())),
        ])
    }
}

/// Bytes as MiB with two decimals (no unit suffix; callers add it).
fn fmt_mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(k1: u32, k2: u32, level: u32) -> SliceNode {
        SliceNode { k1, k2, level }
    }

    /// `(node, its dependencies)` adjacency pairs.
    type Edges = Vec<((u32, u32), Vec<(u32, u32)>)>;

    fn deps_from(edges: &Edges) -> impl FnMut(u32, u32, &mut dyn FnMut(u32, u32)) + '_ {
        move |k1, k2, sink| {
            for (n, deps) in edges {
                if *n == (k1, k2) {
                    for &(d1, d2) in deps {
                        sink(d1, d2);
                    }
                }
            }
        }
    }

    /// Diamond: D(level 2) depends on B and C (level 1), both depend
    /// on A (level 0). Golden residency:
    ///   level 0: {A}            → 1
    ///   level 1: {A, B, C}      → 3 (A still feeds B and C)
    ///   level 2: {B, C, D}      → 3 (A is dead, D is born)
    /// so the floor is 3 of the 4 allocated cells.
    fn diamond() -> (Vec<SliceNode>, Edges) {
        let nodes = vec![node(0, 0, 0), node(1, 0, 1), node(1, 1, 1), node(2, 0, 2)];
        let edges = vec![
            ((1, 0), vec![(0, 0)]),
            ((1, 1), vec![(0, 0)]),
            ((2, 0), vec![(1, 0), (1, 1)]),
        ];
        (nodes, edges)
    }

    #[test]
    fn diamond_floor_matches_the_known_answer() {
        let (nodes, edges) = diamond();
        let lv = level_liveness(&nodes, deps_from(&edges));
        assert_eq!(lv.levels, 3);
        assert_eq!(lv.cells, 4);
        assert_eq!(lv.resident, vec![1, 3, 3]);
        assert_eq!(lv.floor_cells, 3);
        assert_eq!(lv.floor_level, 1, "first level attaining the floor");
    }

    #[test]
    fn chain_keeps_exactly_two_cells_live() {
        // 0 ← 1 ← 2 ← 3: while level l settles, only l-1 is read.
        let nodes: Vec<SliceNode> = (0..4).map(|i| node(i, 0, i)).collect();
        let lv = level_liveness(&nodes, |k1, _, sink| {
            if k1 > 0 {
                sink(k1 - 1, 0);
            }
        });
        assert_eq!(lv.resident, vec![1, 2, 2, 2]);
        assert_eq!(lv.floor_cells, 2);
    }

    #[test]
    fn independent_slices_on_one_level_are_all_resident_at_once() {
        let nodes: Vec<SliceNode> = (0..5).map(|i| node(i, 0, 0)).collect();
        let lv = level_liveness(&nodes, |_, _, _| {});
        assert_eq!(lv.levels, 1);
        assert_eq!(lv.resident, vec![5]);
        assert_eq!(lv.floor_cells, 5);
    }

    #[test]
    fn a_cell_every_level_reads_stays_live_to_the_end() {
        // Node (0,0) at level 0 is read by the top level only; it must
        // stay resident across the middle levels it is not read at.
        let nodes = vec![node(0, 0, 0), node(1, 0, 1), node(2, 0, 2), node(3, 0, 3)];
        let lv = level_liveness(&nodes, |k1, _, sink| {
            if k1 == 3 {
                sink(0, 0);
                sink(2, 0);
            } else if k1 > 0 {
                sink(k1 - 1, 0);
            }
        });
        // (0,0) live 0..=3, (1,0) live 1..=2, (2,0) live 2..=3, (3,0) at 3.
        assert_eq!(lv.resident, vec![1, 2, 3, 3]);
        assert_eq!(lv.floor_cells, 3);
        assert_eq!(lv.floor_level, 2);
    }

    #[test]
    fn unknown_dependencies_are_ignored() {
        let nodes = vec![node(0, 0, 0), node(1, 0, 1)];
        let lv = level_liveness(&nodes, |k1, _, sink| {
            if k1 == 1 {
                sink(9, 9);
                sink(0, 0);
            }
        });
        assert_eq!(lv.resident, vec![1, 2]);
    }

    #[test]
    fn empty_dag_is_degenerate_but_finite() {
        let lv = level_liveness(&[], |_, _, _| {});
        assert_eq!(lv, LevelLiveness::default());
        assert_eq!(lv.resident_at(0), 0);
    }

    fn report() -> MemoryReport {
        let (nodes, edges) = diamond();
        MemoryReport {
            backend: "level-lockfree".to_string(),
            kernel: "tiled".to_string(),
            threads: 2,
            cell_bytes: 4,
            cells_allocated: 8, // lockfree: atomic grid + settled snapshot
            cells_written: 8,
            liveness: level_liveness(&nodes, deps_from(&edges)),
            scratch_bytes_peak: 256,
            scratch_allocs: 3,
            alloc_live_peak_bytes: 0,
            peak_rss_bytes: 0,
            evicted_cells: 0,
            recompute_slices: 0,
            recompute_cells: 0,
            resident_cells_peak: 0,
        }
    }

    #[test]
    fn headline_reports_peak_floor_and_share() {
        let r = report();
        // peak = 8 * 4 = 32 B, floor = 3 * 4 = 12 B → 38% of peak.
        let h = r.headline();
        assert_eq!(
            h,
            "peak 0.00 MiB, theoretical floor 0.00 MiB; level 1 holds 38% of peak"
        );
        assert!((r.floor_share() - 12.0 / 32.0).abs() < 1e-12);
        assert!((r.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_level_and_the_floor_marker() {
        let text = report().render();
        assert!(text.contains("level   0"), "{text}");
        assert!(text.contains("<- floor"), "{text}");
        assert!(text.contains("occupancy 100%"), "{text}");
        assert!(text.contains("mem-profile"), "{text}");
        // An unbounded run shows no retention line.
        assert!(!text.contains("retention:"), "{text}");
    }

    #[test]
    fn render_shows_the_retention_line_for_budgeted_runs() {
        let mut r = report();
        r.evicted_cells = 5;
        r.recompute_slices = 2;
        r.recompute_cells = 11;
        r.resident_cells_peak = 3;
        let text = r.render();
        assert!(text.contains("retention: 5 cells evicted"), "{text}");
        assert!(text.contains("resident peak 3 cells"), "{text}");
        assert!(text.contains("recomputed 2 slices / 11 cells"), "{text}");
        let doc = r.to_json();
        assert_eq!(doc.get("evicted_cells").and_then(Value::as_f64), Some(5.0));
        assert_eq!(
            doc.get("recompute_slices").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            doc.get("recompute_cells").and_then(Value::as_f64),
            Some(11.0)
        );
        assert_eq!(
            doc.get("resident_cells_peak").and_then(Value::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn json_twin_round_trips_and_agrees_with_the_struct() {
        let r = report();
        let doc = r.to_json();
        assert_eq!(doc.get("schema_version").and_then(Value::as_f64), Some(1.0));
        assert_eq!(doc.get("floor_cells").and_then(Value::as_f64), Some(3.0));
        assert_eq!(doc.get("peak_bytes").and_then(Value::as_f64), Some(32.0));
        assert_eq!(doc.get("floor_bytes").and_then(Value::as_f64), Some(12.0));
        assert_eq!(
            doc.get("resident")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("headline").and_then(Value::as_str),
            Some(r.headline().as_str())
        );
        let text = doc.to_json_pretty();
        assert_eq!(crate::json::parse(&text).expect("round trip"), doc);
    }
}

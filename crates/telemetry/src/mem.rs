//! Allocation accounting: coarse arena tagging, live/peak byte
//! counters, and the opt-in counting allocator behind the
//! `mem-profile` feature.
//!
//! The time-domain recorder answers "where did the cycles go"; this
//! module answers the same question for bytes. Allocations are tagged
//! with a coarse [`Arena`] — memo storage, per-worker scratch, trace
//! buffers, or everything else — by a thread-local scope the code
//! being measured opens around its allocation sites
//! ([`ArenaScope::enter`]). Per-arena counters track live bytes, the
//! high-water mark of live bytes, cumulative bytes, and allocation
//! counts.
//!
//! Nothing is measured by default. The counters only move when a
//! binary installs [`CountingAlloc`] as its global allocator, which
//! requires the `mem-profile` feature (the `srna` CLI forwards it):
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: mcos_telemetry::mem::CountingAlloc = mcos_telemetry::mem::CountingAlloc::system();
//! ```
//!
//! This crate deliberately does **not** install the allocator itself:
//! test binaries (e.g. `tests/zero_overhead.rs`) install their own
//! counting allocators, and a library must not make that choice for
//! its dependents.
//!
//! **Accuracy model.** The arena tag is read from the *current*
//! thread's scope at both allocation and deallocation time. There is
//! no per-pointer arena map (that would itself allocate), so a buffer
//! allocated under one scope and freed under another is debited from
//! the wrong arena; per-arena `live` therefore uses saturating
//! subtraction and is approximate, while process-wide totals are
//! exact. Peaks are monotone within a process by construction
//! (`fetch_max`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Coarse allocation arena. Every tracked byte belongs to exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Arena {
    /// Memo-table storage: the `a1 × a2` cell grids the stores own.
    Memo,
    /// Per-worker tabulation scratch and per-step staging buffers.
    Scratch,
    /// Telemetry's own buffers: event vectors, trace export strings.
    Trace,
    /// Everything not opted into a scope (the thread default).
    Other,
}

impl Arena {
    /// Number of arenas (array dimension for per-arena counters).
    pub const COUNT: usize = 4;

    /// Every arena, in declaration order.
    pub const ALL: [Arena; Arena::COUNT] =
        [Arena::Memo, Arena::Scratch, Arena::Trace, Arena::Other];

    /// Stable label used in reports and trace tracks.
    pub fn name(self) -> &'static str {
        match self {
            Arena::Memo => "memo",
            Arena::Scratch => "scratch",
            Arena::Trace => "trace",
            Arena::Other => "other",
        }
    }
}

/// Per-arena atomic counters. `live` saturates at zero on mismatched
/// frees; `peak` and `total` are monotone.
struct ArenaCells {
    live: AtomicU64,
    peak: AtomicU64,
    total: AtomicU64,
    allocs: AtomicU64,
}

impl ArenaCells {
    const fn new() -> ArenaCells {
        ArenaCells {
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            total: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }
}

static ARENAS: [ArenaCells; Arena::COUNT] = [const { ArenaCells::new() }; Arena::COUNT];

thread_local! {
    /// The current thread's arena tag, as an index into `ARENAS`.
    /// Const-initialized so reading it never allocates (the counting
    /// allocator reads it on every `alloc`).
    static CURRENT: Cell<usize> = const { Cell::new(Arena::Other as usize) };
}

/// The arena index for the current thread, defaulting to `Other` when
/// thread-local storage is unavailable (thread teardown).
fn current_index() -> usize {
    CURRENT.try_with(Cell::get).unwrap_or(Arena::Other as usize)
}

/// RAII guard tagging the current thread's allocations with an arena.
/// Restores the previous tag on drop; scopes nest.
#[must_use = "the tag only lasts while the scope is alive"]
pub struct ArenaScope {
    prev: usize,
    /// Thread-local state is restored on drop, so the guard must stay
    /// on the thread that opened it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ArenaScope {
    /// Tags subsequent allocations on this thread with `arena` until
    /// the returned guard drops.
    pub fn enter(arena: Arena) -> ArenaScope {
        let prev = CURRENT
            .try_with(|c| c.replace(arena as usize))
            .unwrap_or(Arena::Other as usize);
        ArenaScope {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for ArenaScope {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| c.set(self.prev));
    }
}

/// Records an allocation of `bytes` against the current thread's
/// arena. Called by [`CountingAlloc`]; callable directly by tests.
pub fn record_alloc(bytes: u64) {
    let a = &ARENAS[current_index()];
    // ORDERING: Relaxed — these are statistics; nothing synchronizes
    // through them and per-counter monotonicity is all reports need.
    let live = a.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // ORDERING: Relaxed — max-merge of a statistic.
    a.peak.fetch_max(live, Ordering::Relaxed);
    // ORDERING: Relaxed — statistic.
    a.total.fetch_add(bytes, Ordering::Relaxed);
    // ORDERING: Relaxed — statistic.
    a.allocs.fetch_add(1, Ordering::Relaxed);
}

/// Records a deallocation of `bytes` against the current thread's
/// arena. Saturates at zero: a free observed under a different scope
/// than its allocation must not drive `live` negative.
pub fn record_dealloc(bytes: u64) {
    let a = &ARENAS[current_index()];
    let sub = |v: u64| Some(v.saturating_sub(bytes));
    let _ = a
        .live
        // ORDERING: Relaxed — statistic; the CAS loop only needs
        // atomicity of the single counter.
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, sub);
}

/// A point-in-time copy of one arena's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes currently live (allocated minus freed, clamped at zero).
    pub live: u64,
    /// High-water mark of `live` since process start.
    pub peak: u64,
    /// Cumulative bytes ever allocated.
    pub total: u64,
    /// Cumulative allocation count.
    pub allocs: u64,
}

/// A point-in-time copy of every arena's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Per-arena stats, indexed by `Arena as usize`.
    pub arenas: [ArenaStats; Arena::COUNT],
}

impl MemSnapshot {
    /// Stats for one arena.
    pub fn get(&self, arena: Arena) -> ArenaStats {
        self.arenas[arena as usize]
    }

    /// Live bytes across all arenas.
    pub fn live(&self) -> u64 {
        self.arenas.iter().map(|a| a.live).sum()
    }

    /// Sum of per-arena peaks: an upper bound on the true process
    /// peak (arenas need not peak simultaneously).
    pub fn peak(&self) -> u64 {
        self.arenas.iter().map(|a| a.peak).sum()
    }

    /// Cumulative allocation count across all arenas. Zero means no
    /// counting allocator is installed (the `mem-profile` default).
    pub fn total_allocs(&self) -> u64 {
        self.arenas.iter().map(|a| a.allocs).sum()
    }
}

/// Copies the current counters.
pub fn snapshot() -> MemSnapshot {
    let mut out = MemSnapshot::default();
    for (cells, stats) in ARENAS.iter().zip(out.arenas.iter_mut()) {
        // ORDERING: Relaxed — each counter is read independently; a
        // snapshot is advisory, not a consistent cut.
        stats.live = cells.live.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        stats.peak = cells.peak.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        stats.total = cells.total.load(Ordering::Relaxed);
        // ORDERING: Relaxed — see above.
        stats.allocs = cells.allocs.load(Ordering::Relaxed);
    }
    out
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or when the file is
/// unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(feature = "mem-profile")]
mod counting {
    use super::{record_alloc, record_dealloc};
    use std::alloc::{GlobalAlloc, Layout, System};

    /// A counting wrapper around the system allocator. Only exists
    /// under `mem-profile`; a *binary* opts in with
    /// `#[global_allocator]` — this crate never installs it.
    pub struct CountingAlloc {
        inner: System,
    }

    impl CountingAlloc {
        /// Wraps [`std::alloc::System`].
        pub const fn system() -> CountingAlloc {
            CountingAlloc { inner: System }
        }
    }

    #[allow(unsafe_code)]
    // SAFETY: every method forwards verbatim to `System`, which
    // upholds the GlobalAlloc contract; counters never allocate.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: forwards to `System`; the counter update is an
        // atomic add that never allocates or unwinds.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: `layout` is forwarded verbatim from our caller,
            // who guarantees it is valid per the trait contract.
            let p = unsafe { self.inner.alloc(layout) };
            if !p.is_null() {
                record_alloc(layout.size() as u64);
            }
            p
        }

        // SAFETY: forwards to `System`; the counter update is an
        // atomic sub that never allocates or unwinds.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            record_dealloc(layout.size() as u64);
            // SAFETY: `ptr` was returned by `self.inner.alloc` with
            // this `layout`, per the trait contract on our caller.
            unsafe { self.inner.dealloc(ptr, layout) }
        }

        // SAFETY: forwards to `System`; the counter updates are
        // atomic and never allocate or unwind.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // SAFETY: `ptr`/`layout` come from a matching alloc and
            // `new_size` is nonzero, per the trait contract.
            let p = unsafe { self.inner.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                record_dealloc(layout.size() as u64);
                record_alloc(new_size as u64);
            }
            p
        }
    }
}

#[cfg(feature = "mem-profile")]
pub use counting::CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process globals shared with every other test in
    // this binary, so assertions are delta-based and scoped to the
    // `Trace` arena (nothing else in the unit-test binary enters it).

    #[test]
    fn live_never_goes_negative_and_saturates_at_zero() {
        let _scope = ArenaScope::enter(Arena::Trace);
        let before = snapshot().get(Arena::Trace);
        record_dealloc(1 << 40);
        let after = snapshot().get(Arena::Trace);
        assert!(after.live <= before.live, "dealloc may only shrink live");
        record_alloc(64);
        record_dealloc(1 << 40);
        assert_eq!(snapshot().get(Arena::Trace).live, 0);
    }

    #[test]
    fn peak_is_monotone_within_a_scope() {
        let _scope = ArenaScope::enter(Arena::Trace);
        let mut last_peak = snapshot().get(Arena::Trace).peak;
        for step in 1..=8u64 {
            record_alloc(step * 128);
            let s = snapshot().get(Arena::Trace);
            assert!(s.peak >= last_peak, "peak must never decrease");
            assert!(s.peak >= s.live, "peak bounds live");
            last_peak = s.peak;
            record_dealloc(step * 128);
            assert!(
                snapshot().get(Arena::Trace).peak >= last_peak,
                "freeing must not lower the peak"
            );
        }
    }

    #[test]
    fn scopes_nest_and_restore_the_previous_arena() {
        let outer = ArenaScope::enter(Arena::Memo);
        let memo_before = snapshot().get(Arena::Memo).total;
        {
            let _inner = ArenaScope::enter(Arena::Scratch);
            let scratch_before = snapshot().get(Arena::Scratch).total;
            record_alloc(32);
            assert_eq!(snapshot().get(Arena::Scratch).total, scratch_before + 32);
        }
        record_alloc(16);
        let memo = snapshot().get(Arena::Memo);
        assert_eq!(memo.total, memo_before + 16, "inner scope must restore");
        drop(outer);
    }

    #[test]
    fn allocation_totals_and_counts_accumulate() {
        let _scope = ArenaScope::enter(Arena::Trace);
        let before = snapshot().get(Arena::Trace);
        record_alloc(100);
        record_alloc(28);
        record_dealloc(100);
        let after = snapshot().get(Arena::Trace);
        assert_eq!(after.total - before.total, 128);
        assert_eq!(after.allocs - before.allocs, 2);
    }

    #[test]
    fn arena_names_are_stable_and_distinct() {
        let names: Vec<&str> = Arena::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["memo", "scratch", "trace", "other"]);
        assert_eq!(Arena::ALL.len(), Arena::COUNT);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM must parse on linux");
        assert!(rss > 0);
    }
}

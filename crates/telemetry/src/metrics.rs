//! A typed, centrally-registered metrics registry.
//!
//! Every quantity the repo reports — engine counters, kernel
//! throughput, stall totals — flows through one registry with a
//! documented, stable name schema, instead of ad-hoc struct fields and
//! format strings scattered across crates. Three metric types, no
//! dependencies:
//!
//! * [`Counter`] — monotone `u64` total;
//! * [`Gauge`] — last-write-wins `f64` level;
//! * [`Histogram`] — fixed log2 buckets over `u64` samples (bucket `i`
//!   holds samples whose bit length is `i`), cheap enough for per-slice
//!   latencies.
//!
//! # Metric-name schema
//!
//! Names are dot-separated lowercase segments, `[a-z][a-z0-9_]*` each
//! ([`valid_metric_name`]). The stable names are declared once, in
//! [`names`]; the workspace lint rejects ad-hoc `mcos.`-prefixed
//! literals outside this crate so the schema cannot fork silently:
//!
//! | name | type | meaning |
//! |------|------|---------|
//! | `mcos.engine.slices_total` | counter | child slices tabulated |
//! | `mcos.engine.cells_total` | counter | compressed cells tabulated |
//! | `mcos.engine.slice_cells_max` | gauge | largest single-slice cell count |
//! | `mcos.engine.barrier_waits_total` | counter | barrier/wait intervals recorded |
//! | `mcos.engine.settled_reads_total` | counter | settled-snapshot copies (wavefront) |
//! | `mcos.engine.busy_ns_total` | counter | slice-tabulation nanoseconds, all lanes |
//! | `mcos.engine.wait_ns_total` | counter | barrier + collective nanoseconds, all lanes |
//! | `mcos.engine.wall_ns` | gauge | stage-one wall-clock of the run |
//! | `mcos.engine.slice_latency_ns` | histogram | per-slice tabulation latency |
//! | `mcos.memo.hits_total` | counter | memoization hits (top-down) |
//! | `mcos.memo.misses_total` | counter | memoization misses (top-down) |
//! | `mcos.allreduce.calls_total` | counter | collectives completed |
//! | `mcos.allreduce.rounds_total` | counter | binomial-tree message rounds |
//! | `mcos.allreduce.bytes_total` | counter | payload bytes, summed over ranks |
//! | `mcos.kernel.cells_per_sec` | gauge | kernel throughput of the run |
//! | `mcos.mem.memo.cells_allocated` | gauge | physical memo cells allocated (replicas included) |
//! | `mcos.mem.memo.cells_written` | gauge | physical memo-cell writes |
//! | `mcos.mem.memo.bytes_peak` | gauge | peak memo footprint in bytes |
//! | `mcos.mem.scratch.allocs` | counter | scratch/staging buffer allocations |
//! | `mcos.mem.scratch.bytes_peak` | gauge | largest per-worker resident scratch |
//! | `mcos.mem.alloc.live_bytes_peak` | gauge | counting-allocator live peak (0 without `mem-profile`) |
//! | `mcos.mem.rss.peak_bytes` | gauge | process `VmHWM` (0 when unavailable) |
//! | `mcos.mem.evicted_cells` | counter | memo cells dropped by the retention contract |
//! | `mcos.mem.recompute_slices` | counter | child slices re-tabulated for evicted reads |
//! | `mcos.mem.recompute_cells` | counter | grid cells tabulated during recomputation |
//! | `mcos.mem.resident_cells_peak` | gauge | peak logically resident memo cells |
//!
//! [`publish_run`] fills a registry with all of the above from a
//! recorded run, so every engine axis (schedule × store × distribution
//! × kernel) snapshots identically.

use crate::json::Value;
use crate::recorder::{CounterSnapshot, Event};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Declared stable metric names. Every name the workspace emits lives
/// here; see the module docs for the schema table.
pub mod names {
    /// Child slices tabulated (counter).
    pub const ENGINE_SLICES_TOTAL: &str = "mcos.engine.slices_total";
    /// Compressed cells tabulated (counter).
    pub const ENGINE_CELLS_TOTAL: &str = "mcos.engine.cells_total";
    /// Largest single-slice cell count (gauge).
    pub const ENGINE_SLICE_CELLS_MAX: &str = "mcos.engine.slice_cells_max";
    /// Barrier/wait intervals recorded (counter).
    pub const ENGINE_BARRIER_WAITS_TOTAL: &str = "mcos.engine.barrier_waits_total";
    /// Settled-snapshot entry copies (counter).
    pub const ENGINE_SETTLED_READS_TOTAL: &str = "mcos.engine.settled_reads_total";
    /// Slice-tabulation nanoseconds across all lanes (counter).
    pub const ENGINE_BUSY_NS_TOTAL: &str = "mcos.engine.busy_ns_total";
    /// Barrier and collective nanoseconds across all lanes (counter).
    pub const ENGINE_WAIT_NS_TOTAL: &str = "mcos.engine.wait_ns_total";
    /// Stage-one wall-clock of the run, nanoseconds (gauge).
    pub const ENGINE_WALL_NS: &str = "mcos.engine.wall_ns";
    /// Per-slice tabulation latency, nanoseconds (histogram).
    pub const ENGINE_SLICE_LATENCY_NS: &str = "mcos.engine.slice_latency_ns";
    /// Memoization hits (counter).
    pub const MEMO_HITS_TOTAL: &str = "mcos.memo.hits_total";
    /// Memoization misses (counter).
    pub const MEMO_MISSES_TOTAL: &str = "mcos.memo.misses_total";
    /// `Allreduce` collectives completed (counter).
    pub const ALLREDUCE_CALLS_TOTAL: &str = "mcos.allreduce.calls_total";
    /// Binomial-tree message rounds (counter).
    pub const ALLREDUCE_ROUNDS_TOTAL: &str = "mcos.allreduce.rounds_total";
    /// Collective payload bytes, summed over ranks (counter).
    pub const ALLREDUCE_BYTES_TOTAL: &str = "mcos.allreduce.bytes_total";
    /// Kernel throughput of the run, cells per second (gauge).
    pub const KERNEL_CELLS_PER_SEC: &str = "mcos.kernel.cells_per_sec";
    /// Physical memo cells allocated, replicas included (gauge).
    pub const MEM_MEMO_CELLS_ALLOCATED: &str = "mcos.mem.memo.cells_allocated";
    /// Physical memo-cell writes (gauge).
    pub const MEM_MEMO_CELLS_WRITTEN: &str = "mcos.mem.memo.cells_written";
    /// Peak memo footprint in bytes (gauge).
    pub const MEM_MEMO_BYTES_PEAK: &str = "mcos.mem.memo.bytes_peak";
    /// Scratch/staging buffer allocations (counter).
    pub const MEM_SCRATCH_ALLOCS: &str = "mcos.mem.scratch.allocs";
    /// Largest per-worker resident scratch, bytes (gauge).
    pub const MEM_SCRATCH_BYTES_PEAK: &str = "mcos.mem.scratch.bytes_peak";
    /// Counting-allocator live-bytes peak; 0 without `mem-profile`
    /// (gauge).
    pub const MEM_ALLOC_LIVE_BYTES_PEAK: &str = "mcos.mem.alloc.live_bytes_peak";
    /// Process peak RSS in bytes; 0 when unavailable (gauge).
    pub const MEM_RSS_PEAK_BYTES: &str = "mcos.mem.rss.peak_bytes";
    /// Logical memo cells dropped by the retention contract (counter).
    pub const MEM_EVICTED_CELLS: &str = "mcos.mem.evicted_cells";
    /// Child slices re-tabulated to service evicted reads (counter).
    pub const MEM_RECOMPUTE_SLICES: &str = "mcos.mem.recompute_slices";
    /// Grid cells tabulated during recomputation (counter).
    pub const MEM_RECOMPUTE_CELLS: &str = "mcos.mem.recompute_cells";
    /// Peak logically resident memo cells under the retention plan
    /// (gauge).
    pub const MEM_RESIDENT_CELLS_PEAK: &str = "mcos.mem.resident_cells_peak";

    /// Every declared name (schema tests iterate this).
    pub const ALL: &[&str] = &[
        ENGINE_SLICES_TOTAL,
        ENGINE_CELLS_TOTAL,
        ENGINE_SLICE_CELLS_MAX,
        ENGINE_BARRIER_WAITS_TOTAL,
        ENGINE_SETTLED_READS_TOTAL,
        ENGINE_BUSY_NS_TOTAL,
        ENGINE_WAIT_NS_TOTAL,
        ENGINE_WALL_NS,
        ENGINE_SLICE_LATENCY_NS,
        MEMO_HITS_TOTAL,
        MEMO_MISSES_TOTAL,
        ALLREDUCE_CALLS_TOTAL,
        ALLREDUCE_ROUNDS_TOTAL,
        ALLREDUCE_BYTES_TOTAL,
        KERNEL_CELLS_PER_SEC,
        MEM_MEMO_CELLS_ALLOCATED,
        MEM_MEMO_CELLS_WRITTEN,
        MEM_MEMO_BYTES_PEAK,
        MEM_SCRATCH_ALLOCS,
        MEM_SCRATCH_BYTES_PEAK,
        MEM_ALLOC_LIVE_BYTES_PEAK,
        MEM_RSS_PEAK_BYTES,
        MEM_EVICTED_CELLS,
        MEM_RECOMPUTE_SLICES,
        MEM_RECOMPUTE_CELLS,
        MEM_RESIDENT_CELLS_PEAK,
    ];
}

/// Whether `name` follows the schema: dot-separated segments, each
/// `[a-z][a-z0-9_]*`.
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|segment| {
            segment
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase())
                && segment
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Number of log2 histogram buckets: bucket `i` counts samples of bit
/// length `i` (bucket 0 is exactly the sample `0`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the total.
    pub fn add(&self, n: u64) {
        if n != 0 {
            // ORDERING: pure accounting read after the measured region;
            // no other memory depends on the value, Relaxed suffices.
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        // ORDERING: accounting only — see `Counter::add`.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (stores `f64` bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, value: f64) {
        // ORDERING: accounting only — see `Counter::add`.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        // ORDERING: accounting only — see `Counter::add`.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram handle over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

/// Bucket index of a sample: its bit length (0 for the sample `0`).
pub fn histogram_bucket(sample: u64) -> usize {
    (u64::BITS - sample.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, sample: u64) {
        let cells = &*self.0;
        // ORDERING: accounting only — see `Counter::add`.
        cells.buckets[histogram_bucket(sample)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(sample, Ordering::Relaxed);
    }

    /// Current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(cells.buckets.iter()) {
            // ORDERING: accounting only — see `Counter::add`.
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // ORDERING: accounting only — see `Counter::add`.
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1); an
    /// over-estimate by at most 2×, which is what log2 buckets buy.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

/// Inclusive upper bound of histogram bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug, Clone)]
enum MetricCell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricCell {
    fn type_name(&self) -> &'static str {
        match self {
            MetricCell::Counter(_) => "counter",
            MetricCell::Gauge(_) => "gauge",
            MetricCell::Histogram(_) => "histogram",
        }
    }
}

/// The central registry: name → typed metric. Cloning shares the
/// underlying table; registration is idempotent per (name, type) and an
/// error on name collisions across types or malformed names.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    cells: Arc<Mutex<BTreeMap<String, MetricCell>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> MetricCell,
        view: impl Fn(&MetricCell) -> Option<T>,
    ) -> Result<T, String> {
        if !valid_metric_name(name) {
            return Err(format!(
                "invalid metric name {name:?} (want dotted lowercase segments)"
            ));
        }
        let mut cells = self.cells.lock();
        let cell = cells.entry(name.to_string()).or_insert_with(make);
        view(cell).ok_or_else(|| {
            format!(
                "metric {name:?} already registered as a {}",
                cell.type_name()
            )
        })
    }

    /// Registers (or re-opens) the counter `name`.
    pub fn counter(&self, name: &str) -> Result<Counter, String> {
        self.register(
            name,
            || MetricCell::Counter(Counter::default()),
            |cell| match cell {
                MetricCell::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-opens) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Result<Gauge, String> {
        self.register(
            name,
            || MetricCell::Gauge(Gauge::default()),
            |cell| match cell {
                MetricCell::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-opens) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Result<Histogram, String> {
        self.register(
            name,
            || MetricCell::Histogram(Histogram::default()),
            |cell| match cell {
                MetricCell::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Snapshot {
        let cells = self.cells.lock();
        Snapshot {
            entries: cells
                .iter()
                .map(|(name, cell)| {
                    let value = match cell {
                        MetricCell::Counter(c) => MetricValue::Counter(c.get()),
                        MetricCell::Gauge(g) => MetricValue::Gauge(g.get()),
                        MetricCell::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram state (boxed: a snapshot is ~0.5 KiB of buckets).
    Histogram(Box<HistogramSnapshot>),
}

/// A name-sorted copy of a [`Registry`] at one point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The value of metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter total of `name`, if it is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Gauge level of `name`, if it is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// One `name value` line per metric (histograms render count, mean,
    /// and the p50/p99 bucket bounds).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{name} {n}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} count={} mean={:.1} p50<={} p99<={}",
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    );
                }
            }
        }
        out
    }

    /// JSON object: name → number, or name → `{count, sum, buckets}`
    /// for histograms (trailing zero buckets trimmed).
    pub fn to_json(&self) -> Value {
        Value::object(self.entries.iter().map(|(name, value)| {
            let v = match value {
                MetricValue::Counter(n) => Value::from(*n),
                MetricValue::Gauge(g) => Value::from(*g),
                MetricValue::Histogram(h) => {
                    let last = h.buckets.iter().rposition(|&n| n != 0).map_or(0, |i| i + 1);
                    Value::object([
                        ("count".to_string(), Value::from(h.count)),
                        ("sum".to_string(), Value::from(h.sum)),
                        (
                            "buckets".to_string(),
                            Value::from(h.buckets[..last].to_vec()),
                        ),
                    ])
                }
            };
            (name.clone(), v)
        }))
    }
}

/// Fills `registry` with the full declared schema from one recorded
/// run: the [`CounterSnapshot`] totals, busy/wait time and per-slice
/// latencies from `events`, and the run's wall-clock and throughput.
pub fn publish_run(
    registry: &Registry,
    events: &[Event],
    counters: &CounterSnapshot,
    wall_ns: u64,
) -> Result<(), String> {
    registry
        .counter(names::ENGINE_SLICES_TOTAL)?
        .add(counters.slices);
    registry
        .counter(names::ENGINE_CELLS_TOTAL)?
        .add(counters.cells);
    registry
        .gauge(names::ENGINE_SLICE_CELLS_MAX)?
        .set(counters.max_cells_per_slice as f64);
    registry
        .counter(names::ENGINE_BARRIER_WAITS_TOTAL)?
        .add(counters.barriers);
    registry
        .counter(names::ENGINE_SETTLED_READS_TOTAL)?
        .add(counters.settled_reads);
    registry
        .counter(names::MEMO_HITS_TOTAL)?
        .add(counters.memo_hits);
    registry
        .counter(names::MEMO_MISSES_TOTAL)?
        .add(counters.memo_misses);
    registry
        .counter(names::ALLREDUCE_CALLS_TOTAL)?
        .add(counters.allreduce_calls);
    registry
        .counter(names::ALLREDUCE_ROUNDS_TOTAL)?
        .add(counters.allreduce_rounds);
    registry
        .counter(names::ALLREDUCE_BYTES_TOTAL)?
        .add(counters.allreduce_bytes);

    let busy = registry.counter(names::ENGINE_BUSY_NS_TOTAL)?;
    let wait = registry.counter(names::ENGINE_WAIT_NS_TOTAL)?;
    let latency = registry.histogram(names::ENGINE_SLICE_LATENCY_NS)?;
    for e in events {
        if e.kind.is_busy() {
            busy.add(e.dur_ns);
            latency.observe(e.dur_ns);
        } else if e.kind.is_wait() {
            wait.add(e.dur_ns);
        }
    }
    registry.gauge(names::ENGINE_WALL_NS)?.set(wall_ns as f64);
    let cells_per_sec = if wall_ns == 0 {
        0.0
    } else {
        counters.cells as f64 * 1e9 / wall_ns as f64
    };
    registry
        .gauge(names::KERNEL_CELLS_PER_SEC)?
        .set(cells_per_sec);

    // Memory schema: occupancy from the run's counters, allocator and
    // RSS peaks from the process (zero when nothing measured them).
    registry
        .gauge(names::MEM_MEMO_CELLS_ALLOCATED)?
        .set(counters.memo_cells_allocated as f64);
    registry
        .gauge(names::MEM_MEMO_CELLS_WRITTEN)?
        .set(counters.memo_cells_written as f64);
    // The memo grid stores one `u32` score per cell.
    registry
        .gauge(names::MEM_MEMO_BYTES_PEAK)?
        .set(counters.memo_cells_allocated as f64 * 4.0);
    registry
        .counter(names::MEM_SCRATCH_ALLOCS)?
        .add(counters.scratch_allocs);
    registry
        .gauge(names::MEM_SCRATCH_BYTES_PEAK)?
        .set(counters.scratch_bytes_peak as f64);
    registry
        .gauge(names::MEM_ALLOC_LIVE_BYTES_PEAK)?
        .set(crate::mem::snapshot().peak() as f64);
    registry
        .gauge(names::MEM_RSS_PEAK_BYTES)?
        .set(crate::mem::peak_rss_bytes().unwrap_or(0) as f64);
    registry
        .counter(names::MEM_EVICTED_CELLS)?
        .add(counters.evicted_cells);
    registry
        .counter(names::MEM_RECOMPUTE_SLICES)?
        .add(counters.recompute_slices);
    registry
        .counter(names::MEM_RECOMPUTE_CELLS)?
        .add(counters.recompute_cells);
    registry
        .gauge(names::MEM_RESIDENT_CELLS_PEAK)?
        .set(counters.resident_cells_peak as f64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{BarrierKind, EventKind, Phase};

    #[test]
    fn declared_names_all_validate() {
        for name in names::ALL {
            assert!(valid_metric_name(name), "declared name {name:?} invalid");
        }
        let mut sorted = names::ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names::ALL.len(), "duplicate declared name");
    }

    #[test]
    fn name_validation_rejects_malformed_names() {
        for bad in [
            "",
            "Upper.case",
            "mcos..double",
            "mcos.",
            ".mcos",
            "mcos.9starts_with_digit",
            "mcos.has-dash",
            "mcos.has space",
        ] {
            assert!(!valid_metric_name(bad), "accepted {bad:?}");
        }
        assert!(valid_metric_name("mcos.engine.slices_total"));
        assert!(valid_metric_name("a"));
    }

    #[test]
    fn counters_gauges_histograms_register_and_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("mcos.test.events_total").expect("counter");
        c.inc();
        c.add(4);
        // Re-opening the same name shares the cell.
        let c2 = reg.counter("mcos.test.events_total").expect("reopen");
        c2.add(5);
        assert_eq!(c.get(), 10);

        let g = reg.gauge("mcos.test.level").expect("gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = reg.histogram("mcos.test.latency_ns").expect("histogram");
        for sample in [0u64, 1, 2, 3, 1000] {
            h.observe(sample);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.buckets[0], 1); // sample 0
        assert_eq!(snap.buckets[1], 1); // sample 1
        assert_eq!(snap.buckets[2], 2); // samples 2, 3
        assert_eq!(snap.buckets[10], 1); // sample 1000
    }

    #[test]
    fn type_collisions_and_bad_names_are_errors() {
        let reg = Registry::new();
        reg.counter("mcos.test.x").expect("counter");
        assert!(reg.gauge("mcos.test.x").is_err());
        assert!(reg.histogram("mcos.test.x").is_err());
        assert!(reg.counter("Not.Valid").is_err());
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5);
        let p99 = snap.quantile(0.99);
        assert!((50..=63).contains(&p50), "p50 bound {p50}");
        assert!((99..=127).contains(&p99), "p99 bound {p99}");
        assert!(p50 <= p99);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
        assert_eq!(
            HistogramSnapshot {
                buckets: [0; HISTOGRAM_BUCKETS],
                count: 0,
                sum: 0
            }
            .quantile(0.5),
            0
        );
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        assert_eq!(histogram_bucket(0), 0);
        assert_eq!(histogram_bucket(1), 1);
        assert_eq!(histogram_bucket(2), 2);
        assert_eq!(histogram_bucket(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert!(bucket_upper_bound(i) <= bucket_upper_bound(i + 1));
        }
        for v in [0u64, 1, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper_bound(histogram_bucket(v)));
        }
    }

    #[test]
    fn snapshot_renders_and_serializes_sorted() {
        let reg = Registry::new();
        reg.counter("mcos.test.b").expect("b").add(2);
        reg.gauge("mcos.test.a").expect("a").set(1.5);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(keys, vec!["mcos.test.a", "mcos.test.b"]);
        assert_eq!(snap.counter("mcos.test.b"), Some(2));
        assert_eq!(snap.gauge("mcos.test.a"), Some(1.5));
        assert_eq!(snap.counter("mcos.test.a"), None, "type-checked access");
        let text = snap.render();
        assert!(text.contains("mcos.test.a 1.5"));
        assert!(text.contains("mcos.test.b 2"));
        let doc = snap.to_json();
        assert_eq!(doc.get("mcos.test.b").and_then(Value::as_f64), Some(2.0));
        // Emitted JSON re-parses.
        assert!(crate::json::parse(&doc.to_json()).is_ok());
    }

    #[test]
    fn publish_run_fills_the_declared_schema() {
        let slice = |start: u64, dur: u64| Event {
            tid: 1,
            seq: 0,
            start_ns: start,
            dur_ns: dur,
            kind: EventKind::Slice {
                k1: 0,
                k2: 0,
                level: 0,
                cells: 10,
            },
        };
        let events = vec![
            slice(0, 100),
            slice(100, 300),
            Event {
                tid: 1,
                seq: 2,
                start_ns: 400,
                dur_ns: 50,
                kind: EventKind::Barrier {
                    kind: BarrierKind::LevelJoin,
                    index: 0,
                },
            },
            Event {
                tid: 0,
                seq: 0,
                start_ns: 0,
                dur_ns: 500,
                kind: EventKind::Phase(Phase::StageOne),
            },
        ];
        let counters = CounterSnapshot {
            slices: 2,
            cells: 20,
            max_cells_per_slice: 10,
            barriers: 1,
            ..CounterSnapshot::default()
        };
        let reg = Registry::new();
        publish_run(&reg, &events, &counters, 500).expect("publish");
        let snap = reg.snapshot();
        // Every declared name is present exactly once.
        for name in names::ALL {
            assert!(snap.get(name).is_some(), "{name} missing from snapshot");
        }
        assert_eq!(snap.counter(names::ENGINE_SLICES_TOTAL), Some(2));
        assert_eq!(snap.counter(names::ENGINE_CELLS_TOTAL), Some(20));
        assert_eq!(snap.counter(names::ENGINE_BUSY_NS_TOTAL), Some(400));
        assert_eq!(snap.counter(names::ENGINE_WAIT_NS_TOTAL), Some(50));
        assert_eq!(snap.gauge(names::ENGINE_WALL_NS), Some(500.0));
        let rate = snap.gauge(names::KERNEL_CELLS_PER_SEC).expect("rate");
        assert!((rate - 20.0 * 1e9 / 500.0).abs() < 1e-6);
        match snap.get(names::ENGINE_SLICE_LATENCY_NS) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 400);
            }
            other => panic!("latency metric wrong type: {other:?}"),
        }
    }
}

//! The recorder: shared sink, per-thread logs, and counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Execution phase of an MCOS run, for top-level spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Structure preprocessing and column assignment.
    Preprocess,
    /// Parallel tabulation of the child slices.
    StageOne,
    /// Sequential tabulation of the parent slice.
    StageTwo,
}

impl Phase {
    /// Stable label used in trace names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Preprocess => "preprocess",
            Phase::StageOne => "stage-one",
            Phase::StageTwo => "stage-two",
        }
    }
}

/// Which synchronization construct a wait interval was spent in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BarrierKind {
    /// A pool worker waiting for the next row to be released.
    RowWait,
    /// The pool coordinator collecting results and installing a row
    /// under the write lock.
    RowInstall,
    /// The fork/join barrier at the end of a dynamically scheduled row.
    RowJoin,
    /// The fork/join barrier at the end of a wavefront level (includes
    /// folding the level into the settled snapshot).
    LevelJoin,
    /// A worker waiting for the next wavefront level to be released.
    LevelWait,
    /// A manager–worker rank waiting for its next column assignment.
    TaskWait,
    /// A manager–worker rank that asked for work and was told the step's
    /// queue is empty (the wait that ends in a step-over sentinel rather
    /// than an assignment).
    QueueEmpty,
    /// The manager serving assignment requests for one step (coordinator
    /// overhead, distinct from the settle that follows).
    CoordServe,
}

impl BarrierKind {
    /// Stable label used in trace names and reports.
    pub fn name(self) -> &'static str {
        match self {
            BarrierKind::RowWait => "row-wait",
            BarrierKind::RowInstall => "row-install",
            BarrierKind::RowJoin => "row-join",
            BarrierKind::LevelJoin => "level-join",
            BarrierKind::LevelWait => "level-wait",
            BarrierKind::TaskWait => "task-wait",
            BarrierKind::QueueEmpty => "queue-empty",
            BarrierKind::CoordServe => "coord-serve",
        }
    }

    /// Every kind, in declaration order — lets reports iterate the
    /// taxonomy without hand-maintaining a list.
    pub const ALL: [BarrierKind; 8] = [
        BarrierKind::RowWait,
        BarrierKind::RowInstall,
        BarrierKind::RowJoin,
        BarrierKind::LevelJoin,
        BarrierKind::LevelWait,
        BarrierKind::TaskWait,
        BarrierKind::QueueEmpty,
        BarrierKind::CoordServe,
    ];
}

/// What a recorded span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A top-level phase of the run.
    Phase(Phase),
    /// Tabulation of one child slice (arc pair `(k1, k2)`).
    Slice {
        /// Row arc (of `S₁`).
        k1: u32,
        /// Column arc (of `S₂`).
        k2: u32,
        /// Wavefront dependency level `max(depth₁(k1), depth₂(k2))`.
        level: u32,
        /// Compressed cells tabulated by the slice.
        cells: u64,
    },
    /// Time spent inside a synchronization construct.
    Barrier {
        /// Which construct.
        kind: BarrierKind,
        /// Row or level index the barrier closed.
        index: u32,
    },
    /// One `Allreduce(MAX)` collective (per participating rank).
    Allreduce {
        /// Elements reduced.
        elems: u64,
        /// Payload bytes this rank contributed.
        bytes: u64,
    },
}

impl EventKind {
    /// Trace category ("slice", "barrier", "allreduce", "phase").
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Phase(_) => "phase",
            EventKind::Slice { .. } => "slice",
            EventKind::Barrier { .. } => "barrier",
            EventKind::Allreduce { .. } => "allreduce",
        }
    }

    /// Human-readable span name, stable across runs of the same input.
    pub fn label(self) -> String {
        match self {
            EventKind::Phase(p) => p.name().to_string(),
            EventKind::Slice { k1, k2, .. } => format!("slice ({k1},{k2})"),
            EventKind::Barrier { kind, index } => format!("{} {index}", kind.name()),
            EventKind::Allreduce { .. } => "allreduce".to_string(),
        }
    }

    /// Whether the span is useful work (slice tabulation).
    pub fn is_busy(self) -> bool {
        matches!(self, EventKind::Slice { .. })
    }

    /// Whether the span is synchronization/communication wait
    /// (barriers and collectives).
    pub fn is_wait(self) -> bool {
        matches!(
            self,
            EventKind::Barrier { .. } | EventKind::Allreduce { .. }
        )
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Trace lane: 0 is the coordinator, `1..=p` the workers/ranks.
    pub tid: u32,
    /// Per-lane emission index (program order within the lane).
    pub seq: u32,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// What the span covers.
    pub kind: EventKind,
}

impl Event {
    /// End of the span, nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    fn sort_key(&self) -> (u64, u32, u32) {
        (self.start_ns, self.tid, self.seq)
    }
}

/// Counter totals at a point in time. All values are exact once every
/// worker has joined (the backends read them only after their final
/// join).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Slices tabulated.
    pub slices: u64,
    /// Compressed cells tabulated.
    pub cells: u64,
    /// Largest single-slice cell count seen.
    pub max_cells_per_slice: u64,
    /// Entries copied out of the atomic table into the settled snapshot
    /// (wavefront backend only).
    pub settled_reads: u64,
    /// Memoization lookups that found a value (top-down scheme only).
    pub memo_hits: u64,
    /// Memoization lookups that missed and computed (top-down only).
    pub memo_misses: u64,
    /// `Allreduce` collectives completed (counted once per collective,
    /// not per rank).
    pub allreduce_calls: u64,
    /// Binomial-tree message rounds across all collectives.
    pub allreduce_rounds: u64,
    /// Payload bytes contributed to collectives, summed over ranks.
    pub allreduce_bytes: u64,
    /// Barrier/wait intervals recorded.
    pub barriers: u64,
    /// Physical memo cells the run's store allocated (replicas and
    /// settled snapshots included).
    pub memo_cells_allocated: u64,
    /// Physical memo-cell writes the run performed (a replicated store
    /// writes each logical cell once per rank).
    pub memo_cells_written: u64,
    /// Scratch/staging buffer allocations (capacity growth events; a
    /// hoisted buffer counts once, a per-step buffer once per step).
    pub scratch_allocs: u64,
    /// High-water mark of any single worker's resident scratch bytes.
    pub scratch_bytes_peak: u64,
    /// Logical memo cells dropped by the retention contract (budgeted
    /// runs and windowed snapshots; counted once per cell, not per
    /// replica).
    pub evicted_cells: u64,
    /// Child slices re-tabulated to service reads of evicted cells.
    pub recompute_slices: u64,
    /// Grid cells tabulated during those recomputations.
    pub recompute_cells: u64,
    /// High-water mark of logically resident (written, not yet
    /// evicted) memo cells under the retention plan.
    pub resident_cells_peak: u64,
}

#[derive(Default)]
struct AtomicCounters {
    slices: AtomicU64,
    cells: AtomicU64,
    max_cells_per_slice: AtomicU64,
    settled_reads: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    allreduce_calls: AtomicU64,
    allreduce_rounds: AtomicU64,
    allreduce_bytes: AtomicU64,
    barriers: AtomicU64,
    memo_cells_allocated: AtomicU64,
    memo_cells_written: AtomicU64,
    scratch_allocs: AtomicU64,
    scratch_bytes_peak: AtomicU64,
    evicted_cells: AtomicU64,
    recompute_slices: AtomicU64,
    recompute_cells: AtomicU64,
    resident_cells_peak: AtomicU64,
}

fn counter_load(c: &AtomicU64) -> u64 {
    // ORDERING: pure accounting, read after the recorded region's join
    // edge (or as an in-flight approximation); no other memory depends
    // on the value, so Relaxed suffices.
    c.load(Ordering::Relaxed)
}

fn counter_add(c: &AtomicU64, n: u64) {
    if n != 0 {
        // ORDERING: accounting only — see `counter_load`; the final
        // totals are observed after a join edge, not through this access.
        c.fetch_add(n, Ordering::Relaxed);
    }
}

fn counter_max(c: &AtomicU64, n: u64) {
    if n != 0 {
        // ORDERING: accounting only — see `counter_load`; max-merge of
        // per-lane high-water marks read after the join edge.
        c.fetch_max(n, Ordering::Relaxed);
    }
}

impl AtomicCounters {
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            slices: counter_load(&self.slices),
            cells: counter_load(&self.cells),
            max_cells_per_slice: counter_load(&self.max_cells_per_slice),
            settled_reads: counter_load(&self.settled_reads),
            memo_hits: counter_load(&self.memo_hits),
            memo_misses: counter_load(&self.memo_misses),
            allreduce_calls: counter_load(&self.allreduce_calls),
            allreduce_rounds: counter_load(&self.allreduce_rounds),
            allreduce_bytes: counter_load(&self.allreduce_bytes),
            barriers: counter_load(&self.barriers),
            memo_cells_allocated: counter_load(&self.memo_cells_allocated),
            memo_cells_written: counter_load(&self.memo_cells_written),
            scratch_allocs: counter_load(&self.scratch_allocs),
            scratch_bytes_peak: counter_load(&self.scratch_bytes_peak),
            evicted_cells: counter_load(&self.evicted_cells),
            recompute_slices: counter_load(&self.recompute_slices),
            recompute_cells: counter_load(&self.recompute_cells),
            resident_cells_peak: counter_load(&self.resident_cells_peak),
        }
    }
}

struct Inner {
    epoch: Instant,
    sink: Mutex<Vec<Event>>,
    counters: AtomicCounters,
}

/// Handle to a recording session (or to nothing, when disabled).
///
/// Cloning is cheap — clones share the same sink and counters. The
/// disabled recorder is a `None` and every operation on it is a single
/// branch; see the crate-level overhead policy.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything. `const`, so it can sit in
    /// statics and default configurations.
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Starts a recording session; the epoch (trace time zero) is now.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sink: Mutex::new(Vec::new()),
                counters: AtomicCounters::default(),
            })),
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens the event log for trace lane `tid`. Lane 0 is the
    /// coordinator by convention; workers/ranks use `1..=p`. The log
    /// buffers locally and flushes into the shared sink on drop, so it
    /// must be dropped (or [`WorkerLog::flush`]ed) before the events are
    /// read.
    pub fn lane(&self, tid: u32) -> WorkerLog {
        WorkerLog(self.inner.as_ref().map(|inner| LogState {
            inner: Arc::clone(inner),
            tid,
            seq: 0,
            buf: Vec::new(),
            slices: 0,
            cells: 0,
            max_cells: 0,
            barriers: 0,
            allreduce_bytes: 0,
            memo_writes: 0,
            scratch_allocs: 0,
            scratch_peak: 0,
        }))
    }

    /// Adds settled-snapshot reads (wavefront coordinator).
    pub fn count_settled_reads(&self, n: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.settled_reads, n);
        }
    }

    /// Adds memoization hit/miss totals (top-down scheme).
    pub fn count_memo(&self, hits: u64, misses: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.memo_hits, hits);
            counter_add(&inner.counters.memo_misses, misses);
        }
    }

    /// Records one completed `Allreduce` collective of `rounds`
    /// binomial-tree message rounds. Called once per collective (by the
    /// root rank), not once per participant.
    pub fn count_allreduce(&self, rounds: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.allreduce_calls, 1);
            counter_add(&inner.counters.allreduce_rounds, rounds);
        }
    }

    /// Adds `cells` physical memo cells allocated by a store (called
    /// at store construction, replicas and snapshots included).
    pub fn count_memo_cells_allocated(&self, cells: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.memo_cells_allocated, cells);
        }
    }

    /// Adds `cells` physical memo-cell writes (coordinated stores call
    /// this from their per-step settle).
    pub fn count_memo_cells_written(&self, cells: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.memo_cells_written, cells);
        }
    }

    /// Adds `n` scratch/staging buffer allocation events.
    pub fn count_scratch_allocs(&self, n: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.scratch_allocs, n);
        }
    }

    /// Max-merges one worker's resident scratch bytes into the run's
    /// scratch high-water mark.
    pub fn record_scratch_peak(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            counter_max(&inner.counters.scratch_bytes_peak, bytes);
        }
    }

    /// Adds `cells` logical memo cells dropped by the retention
    /// contract. The eviction driver calls this once per cell (the
    /// replicated store drops the cell from every replica but counts
    /// it once).
    pub fn count_evicted_cells(&self, cells: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.evicted_cells, cells);
        }
    }

    /// Adds one recompute episode: `slices` child slices re-tabulated
    /// covering `cells` grid cells, to service reads of evicted memo
    /// entries.
    pub fn count_recompute(&self, slices: u64, cells: u64) {
        if let Some(inner) = &self.inner {
            counter_add(&inner.counters.recompute_slices, slices);
            counter_add(&inner.counters.recompute_cells, cells);
        }
    }

    /// Max-merges the retention plan's resident-cell count into the
    /// run's high-water mark.
    pub fn record_resident_cells_peak(&self, cells: u64) {
        if let Some(inner) = &self.inner {
            counter_max(&inner.counters.resident_cells_peak, cells);
        }
    }

    /// Current counter totals (exact after all workers have joined).
    pub fn counters(&self) -> CounterSnapshot {
        match &self.inner {
            None => CounterSnapshot::default(),
            Some(inner) => inner.counters.snapshot(),
        }
    }

    /// All flushed events, sorted by start time (ties: lane, then
    /// emission order). Within one lane the result is program order.
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = inner.sink.lock().clone();
        events.sort_by_key(Event::sort_key);
        events
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// An open span: the moment [`WorkerLog::start`] was called, or nothing
/// when the log is disabled. Closed by passing it to one of the
/// span-recording methods of the *same* log.
#[must_use = "a span start must be closed by a recording call"]
#[derive(Debug)]
pub struct SpanStart(Option<Instant>);

struct LogState {
    inner: Arc<Inner>,
    tid: u32,
    seq: u32,
    buf: Vec<Event>,
    slices: u64,
    cells: u64,
    max_cells: u64,
    barriers: u64,
    allreduce_bytes: u64,
    memo_writes: u64,
    scratch_allocs: u64,
    scratch_peak: u64,
}

impl LogState {
    fn record(&mut self, t0: Instant, kind: EventKind) {
        let start_ns = nanos_between(self.inner.epoch, t0);
        let dur_ns = nanos_between(t0, Instant::now());
        self.buf.push(Event {
            tid: self.tid,
            seq: self.seq,
            start_ns,
            dur_ns,
            kind,
        });
        self.seq += 1;
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.inner.sink.lock().append(&mut self.buf);
        }
        let c = &self.inner.counters;
        counter_add(&c.slices, std::mem::take(&mut self.slices));
        counter_add(&c.cells, std::mem::take(&mut self.cells));
        counter_add(&c.barriers, std::mem::take(&mut self.barriers));
        counter_add(
            &c.allreduce_bytes,
            std::mem::take(&mut self.allreduce_bytes),
        );
        counter_add(&c.memo_cells_written, std::mem::take(&mut self.memo_writes));
        counter_add(&c.scratch_allocs, std::mem::take(&mut self.scratch_allocs));
        counter_max(
            &c.scratch_bytes_peak,
            std::mem::take(&mut self.scratch_peak),
        );
        let max_cells = std::mem::take(&mut self.max_cells);
        if max_cells != 0 {
            // ORDERING: accounting only — see `counter_load`; fetch_max
            // keeps the largest value, read after the join edge.
            c.max_cells_per_slice
                .fetch_max(max_cells, Ordering::Relaxed);
        }
    }
}

fn nanos_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// Per-thread event log; see [`Recorder::lane`]. All methods are no-ops
/// on a log opened from a disabled recorder.
pub struct WorkerLog(Option<LogState>);

impl WorkerLog {
    /// Opens a span: reads the clock when enabled, does nothing when
    /// disabled.
    #[inline]
    pub fn start(&self) -> SpanStart {
        SpanStart(self.0.as_ref().map(|_| Instant::now()))
    }

    /// Closes `span` as a slice-tabulation event for arc pair
    /// `(k1, k2)`. `detail` supplies the dependency level and cell count
    /// and only runs when the log is enabled.
    #[inline]
    pub fn slice(
        &mut self,
        span: SpanStart,
        k1: u32,
        k2: u32,
        detail: impl FnOnce() -> (u32, u64),
    ) {
        if let (Some(state), Some(t0)) = (self.0.as_mut(), span.0) {
            let (level, cells) = detail();
            state.slices += 1;
            state.cells += cells;
            state.max_cells = state.max_cells.max(cells);
            state.record(
                t0,
                EventKind::Slice {
                    k1,
                    k2,
                    level,
                    cells,
                },
            );
        }
    }

    /// Closes `span` as a wait interval in synchronization construct
    /// `kind` for row/level `index`.
    #[inline]
    pub fn barrier(&mut self, span: SpanStart, kind: BarrierKind, index: u32) {
        if let (Some(state), Some(t0)) = (self.0.as_mut(), span.0) {
            state.barriers += 1;
            state.record(t0, EventKind::Barrier { kind, index });
        }
    }

    /// Closes `span` as this rank's participation in one `Allreduce`
    /// over `elems` elements (`bytes` payload bytes contributed).
    #[inline]
    pub fn allreduce(&mut self, span: SpanStart, elems: u64, bytes: u64) {
        if let (Some(state), Some(t0)) = (self.0.as_mut(), span.0) {
            state.allreduce_bytes += bytes;
            state.record(t0, EventKind::Allreduce { elems, bytes });
        }
    }

    /// Adds `cells` physical memo-cell writes performed by this lane
    /// (uncoordinated stores call this from their per-step merge).
    #[inline]
    pub fn memo_writes(&mut self, cells: u64) {
        if let Some(state) = self.0.as_mut() {
            state.memo_writes += cells;
        }
    }

    /// Adds `n` scratch/staging buffer allocation events on this lane.
    #[inline]
    pub fn scratch_alloc(&mut self, n: u64) {
        if let Some(state) = self.0.as_mut() {
            state.scratch_allocs += n;
        }
    }

    /// Max-merges this lane's resident scratch bytes.
    #[inline]
    pub fn scratch_peak(&mut self, bytes: u64) {
        if let Some(state) = self.0.as_mut() {
            state.scratch_peak = state.scratch_peak.max(bytes);
        }
    }

    /// Closes `span` as a top-level phase.
    #[inline]
    pub fn phase(&mut self, span: SpanStart, phase: Phase) {
        if let (Some(state), Some(t0)) = (self.0.as_mut(), span.0) {
            state.record(t0, EventKind::Phase(phase));
        }
    }

    /// Flushes buffered events and counters into the shared sink now
    /// (also happens on drop).
    pub fn flush(&mut self) {
        if let Some(state) = &mut self.0 {
            state.flush();
        }
    }
}

impl Drop for WorkerLog {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let mut log = rec.lane(1);
        let span = log.start();
        log.slice(span, 0, 0, || panic!("detail closure must not run"));
        let span = log.start();
        log.barrier(span, BarrierKind::RowJoin, 0);
        log.memo_writes(5);
        log.scratch_alloc(1);
        log.scratch_peak(1024);
        drop(log);
        rec.count_memo_cells_allocated(100);
        rec.count_memo_cells_written(5);
        rec.count_scratch_allocs(2);
        rec.record_scratch_peak(2048);
        rec.count_evicted_cells(7);
        rec.count_recompute(1, 4);
        rec.record_resident_cells_peak(99);
        assert!(rec.events().is_empty());
        assert_eq!(rec.counters(), CounterSnapshot::default());
    }

    #[test]
    fn enabled_recorder_keeps_spans_and_counters() {
        let rec = Recorder::enabled();
        let mut log = rec.lane(2);
        let span = log.start();
        log.slice(span, 3, 5, || (1, 40));
        let span = log.start();
        log.barrier(span, BarrierKind::LevelJoin, 7);
        let span = log.start();
        log.allreduce(span, 10, 40);
        log.memo_writes(1);
        log.scratch_alloc(1);
        log.scratch_peak(512);
        drop(log);
        rec.count_settled_reads(6);
        rec.count_memo(2, 3);
        rec.count_allreduce(4);
        rec.count_memo_cells_allocated(64);
        rec.count_memo_cells_written(2);
        rec.count_scratch_allocs(1);
        rec.record_scratch_peak(256);
        rec.count_evicted_cells(9);
        rec.count_recompute(2, 12);
        rec.record_resident_cells_peak(30);
        rec.record_resident_cells_peak(20);

        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.tid == 2));
        assert_eq!(
            events[0].kind,
            EventKind::Slice {
                k1: 3,
                k2: 5,
                level: 1,
                cells: 40
            }
        );
        assert_eq!(events[0].kind.label(), "slice (3,5)");
        assert!(events[0].kind.is_busy());
        assert!(events[1].kind.is_wait());

        let c = rec.counters();
        assert_eq!(c.slices, 1);
        assert_eq!(c.cells, 40);
        assert_eq!(c.max_cells_per_slice, 40);
        assert_eq!(c.settled_reads, 6);
        assert_eq!(c.memo_hits, 2);
        assert_eq!(c.memo_misses, 3);
        assert_eq!(c.allreduce_calls, 1);
        assert_eq!(c.allreduce_rounds, 4);
        assert_eq!(c.allreduce_bytes, 40);
        assert_eq!(c.barriers, 1);
        assert_eq!(c.memo_cells_allocated, 64);
        assert_eq!(c.memo_cells_written, 3, "lane writes + settle writes");
        assert_eq!(c.scratch_allocs, 2);
        assert_eq!(c.scratch_bytes_peak, 512, "max of lane and direct peaks");
        assert_eq!(c.evicted_cells, 9);
        assert_eq!(c.recompute_slices, 2);
        assert_eq!(c.recompute_cells, 12);
        assert_eq!(c.resident_cells_peak, 30, "peak keeps the max");
    }

    #[test]
    fn events_sort_by_time_then_lane_then_sequence() {
        let rec = Recorder::enabled();
        // Two lanes interleave; per-lane program order must survive.
        let mut a = rec.lane(1);
        let mut b = rec.lane(2);
        for i in 0..4u32 {
            let sa = a.start();
            a.barrier(sa, BarrierKind::RowWait, i);
            let sb = b.start();
            b.barrier(sb, BarrierKind::RowWait, i);
        }
        drop(a);
        drop(b);
        let events = rec.events();
        assert_eq!(events.len(), 8);
        for tid in [1u32, 2] {
            let seqs: Vec<u32> = events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.seq)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2, 3], "lane {tid} out of order");
            let starts: Vec<u64> = events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.start_ns)
                .collect();
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "lane {tid} not chronological");
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        let mut log = clone.lane(0);
        let span = log.start();
        log.phase(span, Phase::StageOne);
        drop(log);
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].kind, EventKind::Phase(Phase::StageOne));
    }
}

//! Per-worker load accounting: the observed counterpart of the Graham
//! bound the `load-balance` crate predicts.
//!
//! The paper argues its static distribution works because Graham's list
//! scheduling bounds the heaviest processor's load (Fig. 7/8). This
//! module closes the loop: from recorded events it derives each
//! worker's busy time (slice spans), wait time (barrier + collective
//! spans), and the observed makespan, and renders them next to the
//! predicted makespan, lower bound, and `(2 - 1/p)` guarantee of the
//! static assignment actually used.

use load_balance::Assignment;

use crate::json::Value;
use crate::recorder::{Event, EventKind, Phase};

/// Schema version of [`LoadReport::to_json`]. Bump on any key change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Busy/wait totals for one trace lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Trace lane (0 = coordinator, `1..=p` = workers).
    pub tid: u32,
    /// Nanoseconds in slice-tabulation spans.
    pub busy_ns: u64,
    /// Nanoseconds in barrier/collective wait spans.
    pub wait_ns: u64,
    /// Slices tabulated on this lane.
    pub slices: u64,
    /// DP cells tabulated on this lane (summed over its slice spans).
    pub cells: u64,
    /// Largest single slice this lane tabulated, in cells.
    pub max_cells_per_slice: u64,
}

/// The static assignment's predicted quality, for comparison against
/// the observed load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrahamComparison {
    /// Predicted makespan: the heaviest processor's assigned weight.
    pub makespan: u64,
    /// Lower bound on any schedule: `max(total/p, max weight)`.
    pub lower_bound: u64,
    /// Predicted makespan over the perfectly even split.
    pub imbalance: f64,
    /// Graham's guarantee for greedy list scheduling: `2 - 1/p`.
    pub bound_factor: f64,
}

impl GrahamComparison {
    /// Reads the prediction out of a static `Assignment` and the task
    /// weights it distributed.
    pub fn from_assignment(assignment: &Assignment, weights: &[u64]) -> GrahamComparison {
        GrahamComparison {
            makespan: assignment.makespan(),
            lower_bound: assignment.lower_bound(weights),
            imbalance: assignment.imbalance(),
            bound_factor: 2.0 - 1.0 / assignment.processors().max(1) as f64,
        }
    }
}

/// Memo-store memory use of one recorded run, for the report's memory
/// line (the full level-liveness model lives in
/// [`crate::liveness::MemoryReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUse {
    /// Cells the store allocated across replicas/snapshots.
    pub cells_allocated: u64,
    /// Physical cell writes the store performed.
    pub cells_written: u64,
    /// Bytes per cell (4: one `u32` score).
    pub cell_bytes: u64,
}

impl MemoryUse {
    /// Peak memo bytes: every allocated cell, at cell width.
    pub fn peak_bytes(&self) -> u64 {
        self.cells_allocated * self.cell_bytes
    }

    /// Writes per allocated cell (1.0 means every cell was written
    /// exactly once; replicas and snapshots push it in both
    /// directions).
    pub fn occupancy(&self) -> f64 {
        if self.cells_allocated == 0 {
            return 0.0;
        }
        self.cells_written as f64 / self.cells_allocated as f64
    }
}

/// Aggregated load view of one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Stage-one wall time (the `stage-one` phase span when present,
    /// otherwise the extent of all recorded events), nanoseconds.
    pub wall_ns: u64,
    /// Per-lane busy/wait totals, lane 0 first. Lanes `1..=processors`
    /// are always present (idle workers appear with zero totals).
    pub workers: Vec<WorkerLoad>,
    /// The static assignment's prediction, when the backend used one.
    pub graham: Option<GrahamComparison>,
    /// Name of the slice-tabulation kernel the run used, when known.
    /// Enables the per-kernel throughput line in [`LoadReport::render`].
    pub kernel: Option<String>,
    /// Memo-store memory use, when the run recorded occupancy
    /// counters. Enables the memory line in [`LoadReport::render`].
    pub memory: Option<MemoryUse>,
}

impl LoadReport {
    /// Builds the report from recorded events. `processors` is the
    /// worker count the backend was configured with; lanes that never
    /// emitted an event still get a row.
    pub fn build(events: &[Event], processors: u32) -> LoadReport {
        let wall_ns = stage_one_wall(events);
        let max_tid = events
            .iter()
            .map(|e| e.tid)
            .max()
            .unwrap_or(0)
            .max(processors);
        let mut workers: Vec<WorkerLoad> = (0..=max_tid)
            .map(|tid| WorkerLoad {
                tid,
                ..WorkerLoad::default()
            })
            .collect();
        for e in events {
            let w = &mut workers[e.tid as usize];
            if e.kind.is_busy() {
                w.busy_ns += e.dur_ns;
                w.slices += 1;
                if let EventKind::Slice { cells, .. } = e.kind {
                    w.cells += cells;
                    w.max_cells_per_slice = w.max_cells_per_slice.max(cells);
                }
            } else if e.kind.is_wait() {
                w.wait_ns += e.dur_ns;
            }
        }
        LoadReport {
            wall_ns,
            workers,
            graham: None,
            kernel: None,
            memory: None,
        }
    }

    /// Attaches the static assignment's prediction.
    pub fn with_graham(mut self, graham: GrahamComparison) -> LoadReport {
        self.graham = Some(graham);
        self
    }

    /// Attaches the kernel name, enabling the per-kernel throughput
    /// line in [`LoadReport::render`].
    pub fn with_kernel(mut self, kernel: &str) -> LoadReport {
        self.kernel = Some(kernel.to_string());
        self
    }

    /// Attaches the memo-store memory figures, enabling the memory
    /// line in [`LoadReport::render`].
    pub fn with_memory(mut self, memory: MemoryUse) -> LoadReport {
        self.memory = Some(memory);
        self
    }

    /// Worker lanes only (lane 0 is the coordinator).
    fn worker_lanes(&self) -> impl Iterator<Item = &WorkerLoad> {
        self.workers.iter().filter(|w| w.tid != 0)
    }

    /// Busy time summed over worker lanes.
    pub fn total_busy_ns(&self) -> u64 {
        self.worker_lanes().map(|w| w.busy_ns).sum()
    }

    /// Wait time summed over worker lanes.
    pub fn total_wait_ns(&self) -> u64 {
        self.worker_lanes().map(|w| w.wait_ns).sum()
    }

    /// DP cells tabulated, summed over worker lanes.
    pub fn total_cells(&self) -> u64 {
        self.worker_lanes().map(|w| w.cells).sum()
    }

    /// Largest single slice any worker tabulated, in cells.
    pub fn max_cells_per_slice(&self) -> u64 {
        self.worker_lanes()
            .map(|w| w.max_cells_per_slice)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate tabulation throughput in cells per second of *busy*
    /// time (total cells over total slice-span time, so barrier waits
    /// don't dilute the kernel's measured rate). Zero when nothing was
    /// recorded.
    pub fn cells_per_sec(&self) -> f64 {
        let busy = self.total_busy_ns();
        if busy == 0 {
            return 0.0;
        }
        self.total_cells() as f64 / (busy as f64 / 1e9)
    }

    /// Fraction of `p x wall` spent tabulating slices (parallel
    /// efficiency of stage one).
    pub fn busy_fraction(&self) -> f64 {
        self.fraction_of_wall(self.total_busy_ns())
    }

    /// Fraction of `p x wall` spent waiting in barriers/collectives.
    pub fn wait_fraction(&self) -> f64 {
        self.fraction_of_wall(self.total_wait_ns())
    }

    fn fraction_of_wall(&self, total: u64) -> f64 {
        let lanes = self.worker_lanes().count() as u64;
        let denom = self.wall_ns.saturating_mul(lanes);
        if denom == 0 {
            return 0.0;
        }
        total as f64 / denom as f64
    }

    /// Observed busy-time imbalance: max over workers divided by the
    /// mean (1.0 is perfectly even; 0.0 when nothing was recorded).
    pub fn observed_imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.worker_lanes().map(|w| w.busy_ns).collect();
        let total: u64 = busy.iter().sum();
        if busy.is_empty() || total == 0 {
            return 0.0;
        }
        let mean = total as f64 / busy.len() as f64;
        busy.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stage one: {} wall, {} worker lane(s)\n",
            fmt_ms(self.wall_ns),
            self.worker_lanes().count()
        ));
        out.push_str(
            "  lane         role     busy ms   busy %    wait ms   wait %   slices   \
             cells   max slice\n",
        );
        for w in &self.workers {
            let role = if w.tid == 0 { "coord" } else { "worker" };
            out.push_str(&format!(
                "  {:>4}  {:>11}  {:>10.3}  {:>6.1}  {:>9.3}  {:>6.1}  {:>7}  {:>6}  {:>10}\n",
                w.tid,
                role,
                w.busy_ns as f64 / 1e6,
                percent(w.busy_ns, self.wall_ns),
                w.wait_ns as f64 / 1e6,
                percent(w.wait_ns, self.wall_ns),
                w.slices,
                w.cells,
                w.max_cells_per_slice,
            ));
        }
        out.push_str(&format!(
            "  busy {:.1}% of p x wall; barrier/collective wait {:.1}%\n",
            self.busy_fraction() * 100.0,
            self.wait_fraction() * 100.0,
        ));
        out.push_str(&format!(
            "  observed busy imbalance: {:.3} (max/mean across workers)\n",
            self.observed_imbalance()
        ));
        if let Some(kernel) = &self.kernel {
            out.push_str(&format!(
                "  kernel {kernel}: {} cells in {:.3} ms busy -> {:.2} Mcells/s\n",
                self.total_cells(),
                self.total_busy_ns() as f64 / 1e6,
                self.cells_per_sec() / 1e6,
            ));
        }
        if let Some(m) = &self.memory {
            out.push_str(&format!(
                "  memo store: {} cells allocated ({:.2} MiB peak), {} written \
                 (occupancy {:.2})\n",
                m.cells_allocated,
                m.peak_bytes() as f64 / (1024.0 * 1024.0),
                m.cells_written,
                m.occupancy(),
            ));
        }
        if let Some(g) = &self.graham {
            out.push_str(&format!(
                "  static assignment: makespan {} work units, lower bound {} \
                 (imbalance {:.3}, Graham guarantee <= {:.3}x OPT)\n",
                g.makespan, g.lower_bound, g.imbalance, g.bound_factor
            ));
        }
        out
    }

    /// Machine-readable twin of [`LoadReport::render`], led by
    /// [`REPORT_SCHEMA_VERSION`].
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                Value::from(REPORT_SCHEMA_VERSION),
            ),
            ("wall_ns".to_string(), Value::from(self.wall_ns)),
            (
                "workers".to_string(),
                Value::Array(
                    self.workers
                        .iter()
                        .map(|w| {
                            Value::object([
                                ("tid".to_string(), Value::from(w.tid)),
                                ("busy_ns".to_string(), Value::from(w.busy_ns)),
                                ("wait_ns".to_string(), Value::from(w.wait_ns)),
                                ("slices".to_string(), Value::from(w.slices)),
                                ("cells".to_string(), Value::from(w.cells)),
                                (
                                    "max_cells_per_slice".to_string(),
                                    Value::from(w.max_cells_per_slice),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "busy_fraction".to_string(),
                Value::from(self.busy_fraction()),
            ),
            (
                "wait_fraction".to_string(),
                Value::from(self.wait_fraction()),
            ),
            (
                "observed_imbalance".to_string(),
                Value::from(self.observed_imbalance()),
            ),
            (
                "cells_per_sec".to_string(),
                Value::from(self.cells_per_sec()),
            ),
        ];
        if let Some(kernel) = &self.kernel {
            fields.push(("kernel".to_string(), Value::from(kernel.as_str())));
        }
        if let Some(g) = &self.graham {
            fields.push((
                "graham".to_string(),
                Value::object([
                    ("makespan".to_string(), Value::from(g.makespan)),
                    ("lower_bound".to_string(), Value::from(g.lower_bound)),
                    ("imbalance".to_string(), Value::from(g.imbalance)),
                    ("bound_factor".to_string(), Value::from(g.bound_factor)),
                ]),
            ));
        }
        if let Some(m) = &self.memory {
            fields.push((
                "memory".to_string(),
                Value::object([
                    (
                        "cells_allocated".to_string(),
                        Value::from(m.cells_allocated),
                    ),
                    ("cells_written".to_string(), Value::from(m.cells_written)),
                    ("cell_bytes".to_string(), Value::from(m.cell_bytes)),
                    ("peak_bytes".to_string(), Value::from(m.peak_bytes())),
                    ("occupancy".to_string(), Value::from(m.occupancy())),
                ]),
            ));
        }
        Value::object(fields)
    }
}

/// Stage-one wall time: the longest `stage-one` phase span, or the
/// extent of all events when no phase span was recorded.
fn stage_one_wall(events: &[Event]) -> u64 {
    let phase = events
        .iter()
        .filter(|e| e.kind == EventKind::Phase(Phase::StageOne))
        .map(|e| e.dur_ns)
        .max();
    if let Some(wall) = phase {
        return wall;
    }
    let start = events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let end = events.iter().map(Event::end_ns).max().unwrap_or(0);
    end.saturating_sub(start)
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    part as f64 / whole as f64 * 100.0
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::BarrierKind;

    fn ev(tid: u32, seq: u32, start: u64, dur: u64, kind: EventKind) -> Event {
        Event {
            tid,
            seq,
            start_ns: start,
            dur_ns: dur,
            kind,
        }
    }

    fn slice(cells: u64) -> EventKind {
        EventKind::Slice {
            k1: 0,
            k2: 0,
            level: 0,
            cells,
        }
    }

    #[test]
    fn report_accumulates_busy_and_wait_per_lane() {
        let events = vec![
            ev(0, 0, 0, 1000, EventKind::Phase(Phase::StageOne)),
            ev(1, 0, 0, 600, slice(10)),
            ev(
                1,
                1,
                600,
                100,
                EventKind::Barrier {
                    kind: BarrierKind::RowJoin,
                    index: 0,
                },
            ),
            ev(2, 0, 0, 300, slice(5)),
            ev(
                2,
                1,
                300,
                400,
                EventKind::Allreduce {
                    elems: 4,
                    bytes: 16,
                },
            ),
        ];
        let report = LoadReport::build(&events, 2);
        assert_eq!(report.wall_ns, 1000);
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.workers[1].busy_ns, 600);
        assert_eq!(report.workers[1].wait_ns, 100);
        assert_eq!(report.workers[1].slices, 1);
        assert_eq!(report.workers[1].cells, 10);
        assert_eq!(report.workers[1].max_cells_per_slice, 10);
        assert_eq!(report.workers[2].busy_ns, 300);
        assert_eq!(report.workers[2].wait_ns, 400);
        assert_eq!(report.total_busy_ns(), 900);
        assert_eq!(report.total_wait_ns(), 500);
        assert_eq!(report.total_cells(), 15);
        assert_eq!(report.max_cells_per_slice(), 10);
        // throughput = 15 cells / 900 ns of busy time
        assert!((report.cells_per_sec() - 15.0 / 900e-9).abs() < 1e-3);
        // busy fraction = 900 / (2 * 1000)
        assert!((report.busy_fraction() - 0.45).abs() < 1e-12);
        // imbalance = 600 / 450
        assert!((report.observed_imbalance() - 600.0 / 450.0).abs() < 1e-12);
    }

    #[test]
    fn idle_workers_get_zero_rows() {
        let events = vec![ev(1, 0, 0, 10, slice(1))];
        let report = LoadReport::build(&events, 4);
        assert_eq!(report.workers.len(), 5);
        assert_eq!(report.workers[3].busy_ns, 0);
        assert_eq!(report.observed_imbalance(), 4.0, "one of four lanes busy");
    }

    #[test]
    fn wall_falls_back_to_event_extent() {
        let events = vec![ev(1, 0, 100, 50, slice(1)), ev(2, 0, 120, 80, slice(1))];
        assert_eq!(LoadReport::build(&events, 2).wall_ns, 100);
    }

    #[test]
    fn graham_comparison_reads_assignment() {
        let weights = [5u64, 3, 2, 2];
        let a = load_balance::greedy(&weights, 2);
        let g = GrahamComparison::from_assignment(&a, &weights);
        assert_eq!(g.makespan, a.makespan());
        assert_eq!(g.lower_bound, 6);
        assert!((g.bound_factor - 1.5).abs() < 1e-12);
        let report = LoadReport::build(&[], 2).with_graham(g);
        assert!(report.render().contains("Graham guarantee"));
    }

    #[test]
    fn kernel_line_reports_throughput() {
        let events = vec![
            ev(0, 0, 0, 1_000_000, EventKind::Phase(Phase::StageOne)),
            ev(1, 0, 0, 500_000, slice(2_000_000)),
        ];
        let report = LoadReport::build(&events, 1).with_kernel("tiled");
        // 2M cells over 0.5 ms of busy time = 4000 Mcells/s.
        assert!((report.cells_per_sec() - 4e9).abs() < 1.0);
        let text = report.render();
        assert!(text.contains("kernel tiled"), "{text}");
        assert!(text.contains("4000.00 Mcells/s"), "{text}");
        // Without the kernel name, no throughput line.
        assert!(!LoadReport::build(&events, 1).render().contains("kernel"));
    }

    #[test]
    fn memory_line_reports_peak_and_occupancy() {
        let m = MemoryUse {
            cells_allocated: 1 << 20,
            cells_written: 1 << 19,
            cell_bytes: 4,
        };
        assert_eq!(m.peak_bytes(), 4 << 20);
        assert!((m.occupancy() - 0.5).abs() < 1e-12);
        let report = LoadReport::build(&[], 1).with_memory(m);
        let text = report.render();
        assert!(
            text.contains("memo store: 1048576 cells allocated"),
            "{text}"
        );
        assert!(text.contains("4.00 MiB peak"), "{text}");
        assert!(text.contains("occupancy 0.50"), "{text}");
        // Without memory figures, no memory line.
        assert!(!LoadReport::build(&[], 1).render().contains("memo store"));
        // Degenerate: nothing allocated.
        let zero = MemoryUse {
            cells_allocated: 0,
            cells_written: 0,
            cell_bytes: 4,
        };
        assert_eq!(zero.occupancy(), 0.0);
    }

    #[test]
    fn json_twin_carries_schema_version_and_memory() {
        let events = vec![
            ev(0, 0, 0, 1000, EventKind::Phase(Phase::StageOne)),
            ev(1, 0, 0, 600, slice(10)),
        ];
        let report = LoadReport::build(&events, 1)
            .with_kernel("tiled")
            .with_memory(MemoryUse {
                cells_allocated: 100,
                cells_written: 50,
                cell_bytes: 4,
            });
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_f64),
            Some(REPORT_SCHEMA_VERSION as f64)
        );
        let mem = doc.get("memory").expect("memory object");
        assert_eq!(mem.get("peak_bytes").and_then(Value::as_f64), Some(400.0));
        assert_eq!(mem.get("occupancy").and_then(Value::as_f64), Some(0.5));
        // Round-trips through the JSON parser.
        let parsed = crate::json::parse(&doc.to_json_pretty()).expect("valid JSON");
        assert_eq!(parsed.get("kernel").and_then(Value::as_str), Some("tiled"));
        // Without memory, no memory key.
        assert!(LoadReport::build(&events, 1)
            .to_json()
            .get("memory")
            .is_none());
    }

    #[test]
    fn accumulates_max_slice_across_events() {
        let events = vec![
            ev(1, 0, 0, 10, slice(4)),
            ev(1, 1, 10, 10, slice(9)),
            ev(2, 0, 0, 10, slice(6)),
        ];
        let report = LoadReport::build(&events, 2);
        assert_eq!(report.workers[1].max_cells_per_slice, 9);
        assert_eq!(report.workers[2].max_cells_per_slice, 6);
        assert_eq!(report.max_cells_per_slice(), 9);
        assert_eq!(report.total_cells(), 19);
    }

    #[test]
    fn render_mentions_every_lane() {
        let events = vec![
            ev(0, 0, 0, 1000, EventKind::Phase(Phase::StageOne)),
            ev(1, 0, 0, 500, slice(3)),
        ];
        let text = LoadReport::build(&events, 2).render();
        assert!(text.contains("coord"));
        assert!(text.contains("worker"));
        assert!(text.contains("observed busy imbalance"));
    }
}

//! Chrome trace-event export.
//!
//! Emits the JSON Object Format of the Trace Event specification —
//! a top-level object with a `traceEvents` array — which both
//! [Perfetto](https://ui.perfetto.dev) and `chrome://tracing` load
//! directly. Every span becomes a complete (`"ph": "X"`) event with
//! microsecond timestamps; lanes are named via thread-name metadata
//! records so the coordinator and workers are labelled in the UI.

use crate::liveness::LevelLiveness;
use crate::recorder::{Event, EventKind};

/// Bytes per memo cell (one `u32` score) used by the counter tracks.
const CELL_BYTES: u64 = 4;

/// Serializes `events` as a Chrome trace JSON document. The output is
/// deterministic given the events (sorted by start time, then lane,
/// then per-lane emission order).
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| (e.start_ns, e.tid, e.seq));

    let mut tids: Vec<u32> = sorted.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::with_capacity(64 + sorted.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    // Metadata: name the process and each lane so the viewer shows
    // "coordinator" / "worker N" instead of bare thread ids.
    sep(&mut out);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"mcos\"}}",
    );
    for &tid in &tids {
        let name = lane_name(tid);
        sep(&mut out);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(&name)
        ));
        sep(&mut out);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }

    for e in &sorted {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\
             \"cat\":\"{}\",\"name\":\"{}\",\"args\":{{{}}}}}",
            e.tid,
            micros(e.start_ns),
            micros(e.dur_ns),
            e.kind.category(),
            escape_json(&e.kind.label()),
            args_json(e.kind),
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Like [`chrome_trace_json`], plus memory counter tracks.
///
/// Appends `"ph": "C"` counter events sampled at the end of every
/// slice span: a cumulative "memo written (bytes)" track, and — when a
/// [`LevelLiveness`] model is supplied — a "memo resident model
/// (bytes)" track showing what the liveness model says must be
/// resident at each slice's level. The span portion of the output is
/// byte-identical to [`chrome_trace_json`]; with no slice events the
/// document is exactly the plain export.
pub fn chrome_trace_json_with_memory(events: &[Event], liveness: Option<&LevelLiveness>) -> String {
    let base = chrome_trace_json(events);
    let counters = memory_counter_events(events, liveness);
    if counters.is_empty() {
        return base;
    }
    let trimmed = base.strip_suffix("\n]}\n").expect("trace document tail");
    let mut out = String::with_capacity(base.len() + counters.len() * 96);
    out.push_str(trimmed);
    for c in &counters {
        out.push_str(",\n");
        out.push_str(c);
    }
    out.push_str("\n]}\n");
    out
}

/// One counter sample per slice end, ordered by end time so the
/// cumulative track is monotone.
fn memory_counter_events(events: &[Event], liveness: Option<&LevelLiveness>) -> Vec<String> {
    let mut slices: Vec<(u64, u32, u32, u64, u32)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Slice { level, cells, .. } => {
                Some((e.start_ns + e.dur_ns, e.tid, e.seq, cells, level))
            }
            _ => None,
        })
        .collect();
    slices.sort_unstable_by_key(|&(end_ns, tid, seq, ..)| (end_ns, tid, seq));

    let mut out = Vec::with_capacity(slices.len() * 2);
    let mut written_cells: u64 = 0;
    for (end_ns, _, _, cells, level) in slices {
        written_cells += cells;
        out.push(format!(
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\
             \"name\":\"memo written (bytes)\",\
             \"args\":{{\"value\":{}}}}}",
            micros(end_ns),
            written_cells * CELL_BYTES
        ));
        if let Some(model) = liveness {
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\
                 \"name\":\"memo resident model (bytes)\",\
                 \"args\":{{\"value\":{}}}}}",
                micros(end_ns),
                model.resident_at(level) * CELL_BYTES
            ));
        }
    }
    out
}

/// Display name of a trace lane (0 is the coordinator by convention).
pub fn lane_name(tid: u32) -> String {
    if tid == 0 {
        "coordinator".to_string()
    } else {
        format!("worker {tid}")
    }
}

/// Nanoseconds to the microsecond float the trace format expects.
fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn args_json(kind: EventKind) -> String {
    match kind {
        EventKind::Phase(_) => String::new(),
        EventKind::Slice {
            k1,
            k2,
            level,
            cells,
        } => {
            format!("\"k1\":{k1},\"k2\":{k2},\"level\":{level},\"cells\":{cells}")
        }
        EventKind::Barrier { kind, index } => {
            format!("\"kind\":\"{}\",\"index\":{index}", kind.name())
        }
        EventKind::Allreduce { elems, bytes } => {
            format!("\"elems\":{elems},\"bytes\":{bytes}")
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{BarrierKind, Phase, Recorder};

    fn sample_events() -> Vec<Event> {
        let rec = Recorder::enabled();
        let mut coord = rec.lane(0);
        let run = coord.start();
        let mut w = rec.lane(1);
        let s = w.start();
        w.slice(s, 2, 3, || (1, 12));
        let s = w.start();
        w.barrier(s, BarrierKind::RowJoin, 2);
        let s = w.start();
        w.allreduce(s, 8, 32);
        drop(w);
        coord.phase(run, Phase::StageOne);
        drop(coord);
        rec.events()
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let text = chrome_trace_json(&sample_events());
        let doc = crate::json::parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 1 process_name + 2 lanes x 2 metadata + 4 spans.
        assert_eq!(events.len(), 1 + 4 + 4);
        for e in events {
            let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
            assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
            assert!(e.get("name").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
            if ph == "X" {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
            }
        }
    }

    #[test]
    fn export_is_deterministic_for_fixed_events() {
        let events = sample_events();
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn memory_export_adds_counter_tracks_and_preserves_spans() {
        let events = sample_events();
        let nodes = [crate::liveness::SliceNode {
            k1: 2,
            k2: 3,
            level: 0,
        }];
        let model = crate::liveness::level_liveness(&nodes, |_, _, _| {});
        let text = chrome_trace_json_with_memory(&events, Some(&model));
        let doc = crate::json::parse(&text).expect("valid JSON");
        let entries = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // Plain export shape plus two counter samples for the one slice.
        assert_eq!(entries.len(), 1 + 4 + 4 + 2);
        let counters: Vec<_> = entries
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        for c in &counters {
            assert!(c
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64())
                .is_some());
        }
        // The one 12-cell slice makes the cumulative track 48 bytes.
        let written = counters
            .iter()
            .find(|c| c.get("name").and_then(|v| v.as_str()) == Some("memo written (bytes)"))
            .expect("written track");
        assert_eq!(
            written
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64()),
            Some(48.0)
        );
    }

    #[test]
    fn memory_export_without_slices_matches_the_plain_export() {
        let rec = Recorder::enabled();
        let mut coord = rec.lane(0);
        let run = coord.start();
        coord.phase(run, Phase::StageOne);
        drop(coord);
        let events = rec.events();
        assert_eq!(
            chrome_trace_json_with_memory(&events, None),
            chrome_trace_json(&events)
        );
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}

//! Integration test for the `mem-profile` counting allocator: installs
//! [`CountingAlloc`] as this binary's global allocator (one global
//! allocator per test binary, which is why this file is gated by
//! `required-features = ["mem-profile"]`) and checks that real heap
//! traffic lands in the arena the active scope names.
//!
//! Run with `cargo test -p mcos-telemetry --features mem-profile`.

use mcos_telemetry::mem::{self, Arena, ArenaScope, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn real_allocations_are_tagged_by_the_active_scope() {
    const N: usize = 1 << 16;
    let before = mem::snapshot();
    let buf: Vec<u64> = {
        let _scope = ArenaScope::enter(Arena::Memo);
        vec![7u64; N]
    };
    let after = mem::snapshot();
    let memo_delta = after.get(Arena::Memo).total - before.get(Arena::Memo).total;
    assert!(
        memo_delta >= (N * 8) as u64,
        "a {}-byte Vec built under the memo scope must be tagged memo (saw {memo_delta})",
        N * 8
    );
    assert!(
        after.get(Arena::Memo).peak >= (N * 8) as u64,
        "peak must cover the live buffer"
    );
    drop(buf);

    // After the drop (outside any scope, so the free debits `Other` —
    // the documented approximation), totals are monotone and the
    // process-wide live count went down or stayed put.
    let end = mem::snapshot();
    assert!(end.get(Arena::Memo).total >= after.get(Arena::Memo).total);
    assert!(end.total_allocs() > before.total_allocs());
}

#[test]
fn the_allocator_reports_activity_and_rss_is_visible() {
    // Any test body allocates; total_allocs must be nonzero once a
    // counting allocator is installed.
    let s = format!("{:?}", mem::snapshot());
    assert!(!s.is_empty());
    assert!(mem::snapshot().total_allocs() > 0);
    #[cfg(target_os = "linux")]
    assert!(mem::peak_rss_bytes().expect("VmHWM") > 0);
}

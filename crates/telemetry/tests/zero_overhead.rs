//! The overhead-policy contract: a disabled recorder performs no
//! allocations and keeps no events, so instrumentation can stay
//! compiled into the hot paths of every backend.
//!
//! This file contains exactly one test: the counting allocator is
//! process-global, so any concurrently running test in the same binary
//! would pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mcos_telemetry::{BarrierKind, CounterSnapshot, Phase, Recorder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: forwarding the caller's layout unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `alloc` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_allocates_nothing_and_keeps_nothing() {
    let rec = Recorder::disabled();
    let before = ALLOCATIONS.load(Ordering::SeqCst);

    // A representative slice of every hot-path operation the backends
    // perform per slice/row/level.
    for tid in 0..4u32 {
        let mut log = rec.lane(tid);
        for i in 0..1000u32 {
            let span = log.start();
            log.slice(span, i, i + 1, || {
                panic!("detail must not run when disabled")
            });
            let span = log.start();
            log.barrier(span, BarrierKind::RowJoin, i);
            let span = log.start();
            log.allreduce(span, 64, 256);
            log.memo_writes(1);
            log.scratch_alloc(1);
            log.scratch_peak(4096);
        }
        let span = log.start();
        log.phase(span, Phase::StageOne);
        log.flush();
    }
    rec.count_settled_reads(10);
    rec.count_memo(1, 2);
    rec.count_allreduce(3);
    rec.count_memo_cells_allocated(100);
    rec.count_memo_cells_written(100);
    rec.count_scratch_allocs(5);
    rec.record_scratch_peak(1 << 20);
    let counters = rec.counters();
    let events = rec.events();

    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled recorder must not allocate on any path"
    );
    assert!(events.is_empty(), "disabled recorder must keep no events");
    assert_eq!(counters, CounterSnapshot::default());
}

//! Exporting the paper's dependency-graph figures as DOT.
//!
//! Run with:
//!   cargo run -p mcos-parallel --release --example dependency_graph > graph.dot
//!   dot -Tsvg graph.dot -o graph.svg
//!
//! Emits the Figure 3 subproblem graph for the paper's 5-position example
//! on stdout, and prints slice-graph statistics for a nested structure on
//! stderr.

use mcos_core::depgraph;
use rna_structure::formats::dot_bracket;

fn main() {
    // Figure 3: the sequence with arcs (0,4) and (1,3), self-compared.
    // Top-down traversal begins at node (0,4,0,4).
    let s = dot_bracket::parse("((.))").expect("valid");
    let dot = depgraph::subproblem_graph_dot(&s, &s);
    print!("{dot}");

    eprintln!(
        "subproblem graph: {} nodes, {} static edges, {} dynamic edges",
        dot.matches("\"(").count() / 3, // rough: each node appears ~3x (decl absent; edges)
        dot.matches(";\n").count() - dot.matches("dashed").count(),
        dot.matches("dashed").count()
    );

    // Figures 4/6: the slice dependency graph of a nested group.
    let nested = dot_bracket::parse("((((.))))").expect("valid");
    let slice_dot = depgraph::slice_graph_dot(&nested, &nested);
    eprintln!(
        "slice graph for ((((.)))): {} slice nodes, {} dependency edges",
        slice_dot.matches("label=\"slice(").count(),
        slice_dot.matches("dashed").count()
    );
    eprintln!("(pipe stdout into `dot -Tsvg` to render the Figure 3 graph)");
}

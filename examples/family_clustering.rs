//! Clustering a family of related structures by shared architecture —
//! the downstream workflow the paper's introduction motivates.
//!
//! Run with: `cargo run -p mcos-parallel --release --example family_clustering`
//!
//! Two template structures are mutated into small families; all pairs
//! are compared with MCOS on a thread pool; single-linkage clustering on
//! the similarity matrix recovers the families.

use mcos_parallel::pairwise;
use rna_structure::generate::{self, RrnaConfig};
use rna_structure::mutate::{mutate, MutationConfig};

fn main() {
    // Two unrelated templates.
    let template_a = generate::rrna_like(
        &RrnaConfig {
            len: 400,
            arcs: 80,
            mean_stem: 7,
            nest_bias: 0.55,
        },
        100,
    );
    let template_b = generate::rrna_like(
        &RrnaConfig {
            len: 380,
            arcs: 70,
            mean_stem: 5,
            nest_bias: 0.45,
        },
        200,
    );

    // Three mutants of each (light edits: a few arcs removed, a span
    // deleted, a hairpin inserted).
    let cfg = MutationConfig::default();
    let mut names = Vec::new();
    let mut structures = Vec::new();
    for (fam, template) in [("A", &template_a), ("B", &template_b)] {
        names.push(format!("{fam}-template"));
        structures.push(template.clone());
        for seed in 0..3u64 {
            names.push(format!("{fam}-mutant{seed}"));
            structures.push(mutate(template, &cfg, seed));
        }
    }

    println!(
        "comparing {} structures ({} pairs)...",
        structures.len(),
        structures.len() * (structures.len() - 1) / 2
    );
    let matrix = pairwise::score_matrix(&structures, 4);

    println!("\nsimilarity matrix (matched arcs / smaller arc count):");
    print!("{:>12}", "");
    for name in &names {
        print!("{name:>12}");
    }
    println!();
    for (i, name) in names.iter().enumerate() {
        print!("{name:>12}");
        for j in 0..names.len() {
            print!("{:>12.2}", matrix.similarity(i, j));
        }
        println!();
    }

    let clusters = matrix.cluster(0.85);
    println!("\nclusters at similarity >= 0.85:");
    println!("(unrelated rRNA-like structures already share ~0.7-0.8 of their");
    println!(" architecture - generic stems align with generic stems - so family");
    println!(" structure only emerges above that baseline)");
    for (name, c) in names.iter().zip(&clusters) {
        println!("  {name}: cluster {c}");
    }

    // The two families must separate.
    assert_eq!(
        clusters[0..4]
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        1
    );
    assert_eq!(
        clusters[4..8]
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        1
    );
    assert_ne!(clusters[0], clusters[4]);
    println!("\nfamilies recovered correctly");

    let (i, j, s) = matrix.most_similar_pair().unwrap();
    println!("most similar pair: {} / {} ({s:.2})", names[i], names[j]);
}

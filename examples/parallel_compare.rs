//! PRNA in action: the same comparison on all three parallel backends,
//! with per-phase timings.
//!
//! Run with: `cargo run -p mcos-parallel --release --example parallel_compare [threads]`

use load_balance::Policy;
use mcos_core::srna2;
use mcos_parallel::{prna, Backend, PrnaConfig};
use rna_structure::generate;

fn main() {
    let threads: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    // A worst-case input large enough that stage one dominates.
    let s = generate::worst_case_nested(200);
    println!(
        "input: contrived worst case, {} arcs over {} positions; {} processors\n",
        s.num_arcs(),
        s.len(),
        threads
    );

    let reference = srna2::run(&s, &s);
    println!(
        "sequential SRNA2: score {}, stage one {:.3}s, stage two {:.3}s",
        reference.score,
        reference.timings.stage_one.as_secs_f64(),
        reference.timings.stage_two.as_secs_f64()
    );

    for backend in Backend::ALL {
        let config = PrnaConfig {
            processors: threads,
            policy: Policy::Greedy,
            backend,
            ..PrnaConfig::default()
        };
        let out = prna(&s, &s, &config);
        assert_eq!(out.score, reference.score, "backends must agree");
        assert_eq!(out.memo, reference.memo, "memo tables must be identical");
        println!(
            "{:<12} score {}  preproc {:.4}s  stage1 {:.3}s  stage2 {:.4}s",
            backend.name(),
            out.score,
            out.preprocessing.as_secs_f64(),
            out.stage_one.as_secs_f64(),
            out.stage_two.as_secs_f64()
        );
    }
    println!("\nall backends produced identical scores and memo tables");
}

//! Quickstart: compare two RNA secondary structures and recover the
//! common substructure.
//!
//! Run with: `cargo run -p mcos-parallel --release --example quickstart`

use mcos_core::{mcos_score, srna2, traceback, verify};
use rna_structure::formats::dot_bracket;

fn main() {
    // The paper's §III-B example: one structure has three nested arcs
    // followed by two nested arcs; the other has two followed by three.
    let s1 = dot_bracket::parse("(((...)))((...))").expect("valid dot-bracket");
    let s2 = dot_bracket::parse("((...))(((...)))").expect("valid dot-bracket");

    // The one-call API: the MCOS score is the number of matched arcs.
    let score = mcos_score(&s1, &s2);
    println!("S1 = (((...)))((...))   ({} arcs)", s1.num_arcs());
    println!("S2 = ((...))(((...)))   ({} arcs)", s2.num_arcs());
    println!("maximum common ordered substructure: {score} arcs");
    assert_eq!(score, 4, "order and nesting both constrain the matching");

    // The full API exposes the algorithm's internals: per-stage timings
    // and exact work counters.
    let out = srna2::run(&s1, &s2);
    println!(
        "SRNA2 tabulated {} slices / {} compressed subproblems",
        out.counters.slices, out.counters.cells
    );

    // Traceback recovers which arcs matched; the verifier re-checks the
    // mapping from the problem definition alone.
    let mapping = traceback::traceback(&s1, &s2);
    verify::check_mapping(&s1, &s2, &mapping.pairs).expect("traceback is always valid");
    println!("matched arc pairs:");
    for &(a, b) in &mapping.pairs {
        println!("  S1 {}  <->  S2 {}", s1.arc(a), s2.arc(b));
    }
}

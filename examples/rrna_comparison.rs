//! Comparing ribosomal-RNA-scale structures (the paper's Table II
//! scenario): two ~4000-base 23S rRNA-like structures.
//!
//! Run with: `cargo run -p mcos-parallel --release --example rrna_comparison [--full]`
//!
//! The default uses quarter-scale structures so the example finishes in
//! seconds; `--full` uses the paper's exact sizes (4216/721 and
//! 4381/1126).

use mcos_core::{srna1, srna2};
use rna_structure::generate::{rrna_like, RrnaConfig};
use rna_structure::stats;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (fungus_cfg, malaria_cfg) = if full {
        (RrnaConfig::fungus(), RrnaConfig::malaria())
    } else {
        (
            RrnaConfig {
                len: 1054,
                arcs: 180,
                mean_stem: 7,
                nest_bias: 0.55,
            },
            RrnaConfig {
                len: 1095,
                arcs: 280,
                mean_stem: 7,
                nest_bias: 0.55,
            },
        )
    };

    let fungus = rrna_like(&fungus_cfg, 0xF47585);
    let malaria = rrna_like(&malaria_cfg, 0xF48228);
    for (name, s) in [("fungus-like", &fungus), ("malaria-like", &malaria)] {
        let st = stats::stats(s);
        println!(
            "{name}: {} nt, {} arcs, {} stems (longest {}), max depth {}",
            st.len, st.arcs, st.stems, st.longest_stem, st.max_depth
        );
    }

    // Self-comparison (the paper's Table II experiment): every arc must
    // match, so the score doubles as a correctness check.
    for (name, s) in [("fungus-like", &fungus), ("malaria-like", &malaria)] {
        let t = Instant::now();
        let o2 = srna2::run(s, s);
        let d2 = t.elapsed();
        assert_eq!(o2.score, s.num_arcs());
        let t = Instant::now();
        let o1 = srna1::run(s, s);
        let d1 = t.elapsed();
        assert_eq!(o1.score, s.num_arcs());
        println!(
            "{name} self-comparison: SRNA1 {:.3}s, SRNA2 {:.3}s (ratio {:.2})",
            d1.as_secs_f64(),
            d2.as_secs_f64(),
            d1.as_secs_f64() / d2.as_secs_f64()
        );
    }

    // Cross-comparison: how much structure do the two molecules share?
    let t = Instant::now();
    let cross = srna2::run(&fungus, &malaria);
    println!(
        "cross-comparison: {} of {} arcs in common ({:.3}s)",
        cross.score,
        fungus.num_arcs().min(malaria.num_arcs()),
        t.elapsed().as_secs_f64()
    );
}

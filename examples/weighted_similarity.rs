//! Weighted similarity: the Bafna-style model the paper's counting
//! formulation derives from (§III-B removes the weights; this example
//! puts them back).
//!
//! Run with: `cargo run -p mcos-parallel --release --example weighted_similarity`
//!
//! Demonstrates how sequence-aware weights change the optimal common
//! substructure: two arcs that are structurally interchangeable stop
//! being interchangeable when their bases differ.

use mcos_core::weighted::{self, ArcWeight, SequenceWeight, Uniform};
use mcos_core::{preprocess::Preprocessed, traceback, verify};
use rna_structure::formats::dot_bracket;
use rna_structure::Sequence;

fn main() {
    // Two structures with identical architecture: two sequential
    // hairpins. Their sequences differ: in S1 the first hairpin is G-C
    // rich, in S2 the *second* one is.
    let s1 = dot_bracket::parse("((..))((..))").expect("valid");
    let s2 = dot_bracket::parse("((..))((..))").expect("valid");
    let q1: Sequence = "GGAACCAAUUAA".parse().expect("valid"); // GC stem first
    let q2: Sequence = "AAUUAAGGAACC".parse().expect("valid"); // GC stem second

    // Structure-only comparison: everything matches (4 arcs).
    let plain = weighted::run(&s1, &s2, &Uniform(1));
    println!("structure-only MCOS: {} of 4 arcs", plain.score);
    assert_eq!(plain.score, 4);

    // Sequence-aware weights: arc match = 1, +2 per agreeing endpoint
    // base. Now matching hairpin-to-same-position costs base agreement.
    let w = SequenceWeight::new(&s1, &q1, &s2, &q2, 1, 2);
    let weighted_run = weighted::run(&s1, &s2, &w);
    println!("sequence-weighted score: {}", weighted_run.score);

    let p1 = Preprocessed::build(&s1);
    let p2 = Preprocessed::build(&s2);
    let mapping = traceback::traceback_weighted(&p1, &p2, &weighted_run.memo, &w);
    verify::check_mapping(&s1, &s2, &mapping.pairs).expect("valid mapping");
    println!("matched arc pairs (weight in parentheses):");
    let mut total = 0;
    for &(a, b) in &mapping.pairs {
        let wt = w.weight(a, b);
        total += wt;
        println!("  S1 {}  <->  S2 {}   ({wt})", s1.arc(a), s2.arc(b));
    }
    assert_eq!(total, weighted_run.score);

    // The order constraint forbids swapping the hairpins (that would
    // reverse sequence order), so the optimum must trade base agreement
    // against arc count. Verify the weighted optimum is strictly higher
    // than naively weighting the plain mapping would suggest whenever a
    // better trade exists, and never lower than the plain score.
    println!(
        "\nplain mapping would weigh {} under these weights; the weighted DP found {}",
        plain_score_weighted(&s1, &s2, &w),
        weighted_run.score
    );
    assert!(weighted_run.score >= plain.score);
}

/// Weight of the *unweighted* optimal mapping under `w` — what you'd get
/// by ignoring weights during optimization and scoring afterwards.
fn plain_score_weighted(
    s1: &rna_structure::ArcStructure,
    s2: &rna_structure::ArcStructure,
    w: &SequenceWeight,
) -> u32 {
    let m = traceback::traceback(s1, s2);
    m.pairs.iter().map(|&(a, b)| w.weight(a, b)).sum()
}

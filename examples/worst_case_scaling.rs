//! The Θ(n²m²) scaling law on contrived worst-case data, and how the
//! memory footprint stays quadratic (the paper's space-complexity claim).
//!
//! Run with: `cargo run -p mcos-parallel --release --example worst_case_scaling`

use mcos_core::srna2;
use rna_structure::generate;
use std::time::Instant;

fn main() {
    println!("arcs   length   cells          time (s)   time ratio   M bytes");
    let mut prev: Option<f64> = None;
    for arcs in [25u32, 50, 100, 200] {
        let s = generate::worst_case_nested(arcs);
        let t = Instant::now();
        let out = srna2::run(&s, &s);
        let d = t.elapsed().as_secs_f64();
        assert_eq!(out.score, arcs);
        // The memo table is the only state that persists across slices:
        // arcs × arcs u32 entries — the Θ(nm) space reduction.
        let memo_bytes = (arcs as u64) * (arcs as u64) * 4;
        let ratio = prev
            .map(|p| format!("{:9.1}x", d / p))
            .unwrap_or_else(|| "        -".into());
        println!(
            "{arcs:>4}   {:>6}   {:>12}   {d:>8.4}   {ratio}   {memo_bytes:>8}",
            s.len(),
            out.counters.cells
        );
        prev = Some(d);
    }
    println!();
    println!("Doubling the arc count multiplies the work by ~16 (Θ(a⁴) = Θ(n²m²/16))");
    println!("while the persistent memo table grows only 4x (Θ(nm)); a full 4-D table");
    println!("for 200 arcs would need (400)⁴ entries ≈ 102 GB — the paper's point.");
}

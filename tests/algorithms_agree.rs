//! Cross-crate agreement: every implementation of the MCOS recurrence —
//! top-down memoization, full bottom-up, SRNA1, SRNA2, and PRNA on all
//! three backends — must compute the same score on every input.

use load_balance::Policy;
use mcos_core::{baseline, srna1, srna2};
use mcos_integration::test_structures;
use mcos_parallel::{prna, Backend, PrnaConfig};
use proptest::prelude::*;
use rna_structure::generate;

fn all_scores(s1: &rna_structure::ArcStructure, s2: &rna_structure::ArcStructure) -> Vec<u32> {
    let mut scores = vec![
        srna1::run(s1, s2).score,
        srna2::run(s1, s2).score,
        baseline::top_down_memo(s1, s2).score,
    ];
    if s1.len() <= baseline::BOTTOM_UP_MAX_LEN && s2.len() <= baseline::BOTTOM_UP_MAX_LEN {
        scores.push(baseline::bottom_up_full(s1, s2).score);
    }
    for backend in Backend::ALL {
        scores.push(
            prna(
                s1,
                s2,
                &PrnaConfig {
                    processors: 3,
                    policy: Policy::Greedy,
                    backend,
                    ..PrnaConfig::default()
                },
            )
            .score,
        );
    }
    scores
}

#[test]
fn battery_pairwise_agreement() {
    let battery = test_structures();
    // Compare a sliding window of pairs (full cross product is slow).
    for w in battery.windows(2) {
        let (n1, s1) = &w[0];
        let (n2, s2) = &w[1];
        let scores = all_scores(s1, s2);
        assert!(
            scores.windows(2).all(|p| p[0] == p[1]),
            "{n1} vs {n2}: {scores:?}"
        );
    }
}

#[test]
fn self_comparison_matches_every_arc() {
    for (name, s) in test_structures() {
        if s.len() > baseline::BOTTOM_UP_MAX_LEN {
            continue;
        }
        let scores = all_scores(&s, &s);
        assert!(
            scores.iter().all(|&v| v == s.num_arcs()),
            "{name}: {scores:?} != {}",
            s.num_arcs()
        );
    }
}

#[test]
fn score_is_symmetric() {
    let battery = test_structures();
    for w in battery.windows(2) {
        let (_, s1) = &w[0];
        let (_, s2) = &w[1];
        assert_eq!(
            srna2::run(s1, s2).score,
            srna2::run(s2, s1).score,
            "MCOS is symmetric in its arguments"
        );
    }
}

#[test]
fn substructure_monotonicity() {
    // Enclosing a structure in an extra arc can only grow the
    // self-comparison score by one.
    for seed in 0..5 {
        let s = generate::random_structure(40, 0.8, seed);
        let e = s.enclosed();
        assert_eq!(
            srna2::run(&e, &e).score,
            srna2::run(&s, &s).score + 1,
            "seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_sequential_algorithms_agree(seed1 in 0u64..5000, seed2 in 0u64..5000,
                                        len1 in 8u32..56, len2 in 8u32..56,
                                        d1 in 0.2f64..1.4, d2 in 0.2f64..1.4) {
        let s1 = generate::random_structure(len1, d1, seed1);
        let s2 = generate::random_structure(len2, d2, seed2);
        let a = srna1::run(&s1, &s2).score;
        let b = srna2::run(&s1, &s2).score;
        let c = baseline::top_down_memo(&s1, &s2).score;
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
    }

    #[test]
    fn prop_score_bounds(seed1 in 0u64..5000, seed2 in 0u64..5000,
                         len in 8u32..48) {
        let s1 = generate::random_structure(len, 0.9, seed1);
        let s2 = generate::random_structure(len, 0.9, seed2);
        let v = srna2::run(&s1, &s2).score;
        prop_assert!(v <= s1.num_arcs().min(s2.num_arcs()));
    }

    #[test]
    fn prop_concat_superadditive(seed in 0u64..2000, len in 8u32..32) {
        // MCOS(a.concat(b), c.concat(d)) >= MCOS(a,c) + MCOS(b,d):
        // the concatenated mappings remain order/structure consistent.
        let a = generate::random_structure(len, 0.8, seed);
        let b = generate::random_structure(len, 0.8, seed + 1);
        let c = generate::random_structure(len, 0.8, seed + 2);
        let d = generate::random_structure(len, 0.8, seed + 3);
        let lhs = srna2::run(&a.concat(&b), &c.concat(&d)).score;
        let rhs = srna2::run(&a, &c).score + srna2::run(&b, &d).score;
        prop_assert!(lhs >= rhs, "lhs {lhs} < rhs {rhs}");
    }
}

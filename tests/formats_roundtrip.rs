//! Format round trips across the structure battery and random inputs:
//! dot-bracket, CT and BPSEQ must all preserve structures exactly, and
//! must agree with each other on the same structure.

use mcos_integration::test_structures;
use proptest::prelude::*;
use rna_structure::formats::{bpseq, ct, dot_bracket};
use rna_structure::generate;

#[test]
fn battery_dot_bracket_round_trip() {
    for (name, s) in test_structures() {
        let text = dot_bracket::to_string(&s);
        let back = dot_bracket::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, s, "{name}");
    }
}

#[test]
fn battery_ct_and_bpseq_round_trip() {
    for (name, s) in test_structures() {
        let seq = generate::sequence_for(&s, 1);
        let ct_rec = ct::CtRecord {
            title: name.clone(),
            sequence: seq.clone(),
            structure: s.clone(),
        };
        let ct_back = ct::parse(&ct::to_string(&ct_rec)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(ct_back.structure, s, "{name} via CT");
        assert_eq!(ct_back.sequence, seq, "{name} sequence via CT");

        let bp_rec = bpseq::BpseqRecord {
            sequence: seq.clone(),
            structure: s.clone(),
        };
        let bp_back =
            bpseq::parse(&bpseq::to_string(&bp_rec)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(bp_back.structure, s, "{name} via BPSEQ");
    }
}

#[test]
fn formats_agree_on_mcos_scores() {
    // Serializing through any format must not change comparison results.
    let s1 = generate::rrna_like(
        &generate::RrnaConfig {
            len: 200,
            arcs: 40,
            mean_stem: 5,
            nest_bias: 0.5,
        },
        2,
    );
    let s2 = generate::random_structure(150, 0.6, 77);
    let direct = mcos_core::mcos_score(&s1, &s2);
    let via_db = mcos_core::mcos_score(
        &dot_bracket::parse(&dot_bracket::to_string(&s1)).unwrap(),
        &dot_bracket::parse(&dot_bracket::to_string(&s2)).unwrap(),
    );
    assert_eq!(direct, via_db);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_dot_bracket_round_trip(seed in 0u64..100_000, len in 0u32..120, d in 0.0f64..1.5) {
        let s = generate::random_structure(len, d, seed);
        let text = dot_bracket::to_string(&s);
        prop_assert_eq!(dot_bracket::parse(&text).unwrap(), s);
    }

    #[test]
    fn prop_bpseq_round_trip(seed in 0u64..100_000, len in 0u32..100) {
        let s = generate::random_structure(len, 0.9, seed);
        let rec = bpseq::BpseqRecord {
            sequence: generate::sequence_for(&s, seed),
            structure: s,
        };
        let text = bpseq::to_string(&rec);
        prop_assert_eq!(bpseq::parse(&text).unwrap(), rec);
    }

    #[test]
    fn prop_ct_round_trip(seed in 0u64..100_000, len in 0u32..100) {
        let s = generate::random_structure(len, 0.7, seed);
        let rec = ct::CtRecord {
            title: format!("random {seed}"),
            sequence: generate::sequence_for(&s, seed),
            structure: s,
        };
        let text = ct::to_string(&rec);
        prop_assert_eq!(ct::parse(&text).unwrap(), rec);
    }
}

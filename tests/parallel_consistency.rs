//! PRNA consistency: every backend, processor count and balancing policy
//! must reproduce SRNA2's score *and* its exact memo table.

use load_balance::Policy;
use mcos_core::srna2;
use mcos_integration::test_structures;
use mcos_parallel::{prna, Backend, PrnaConfig};
use proptest::prelude::*;
use rna_structure::generate;

#[test]
fn battery_backends_procs_policies() {
    let battery = test_structures();
    for (name, s) in &battery {
        let reference = srna2::run(s, s);
        for backend in Backend::ALL {
            for procs in [1u32, 2, 5] {
                let out = prna(
                    s,
                    s,
                    &PrnaConfig {
                        processors: procs,
                        policy: Policy::Lpt,
                        backend,
                        ..PrnaConfig::default()
                    },
                );
                assert_eq!(out.score, reference.score, "{name} {backend:?} p{procs}");
                assert_eq!(out.memo, reference.memo, "{name} {backend:?} p{procs}");
            }
        }
    }
}

#[test]
fn policies_do_not_change_results() {
    let s = generate::rrna_like(
        &generate::RrnaConfig {
            len: 250,
            arcs: 50,
            mean_stem: 6,
            nest_bias: 0.5,
        },
        3,
    );
    let reference = srna2::run(&s, &s);
    for policy in Policy::ALL {
        for backend in [Backend::MPI_SIM, Backend::WORKER_POOL] {
            let out = prna(
                &s,
                &s,
                &PrnaConfig {
                    processors: 4,
                    policy,
                    backend,
                    ..PrnaConfig::default()
                },
            );
            assert_eq!(out.memo, reference.memo, "{} {backend:?}", policy.name());
        }
    }
}

#[test]
fn wavefront_matches_srna2_at_all_thread_counts() {
    // The wavefront backend replaces the row barrier entirely, so it gets
    // a dedicated sweep over 1–8 threads on the shapes whose row and
    // level schedules diverge the most (plus the nested case where they
    // coincide). Bit-identical memo tables, not just equal scores.
    let shapes = [
        ("skewed", generate::skewed_groups(5, 2, 4)),
        ("hairpin-chain", generate::hairpin_chain(12, 4, 3)),
        ("nested", generate::worst_case_nested(24)),
    ];
    for (name, s) in &shapes {
        let reference = srna2::run(s, s);
        for procs in 1u32..=8 {
            let out = prna(
                s,
                s,
                &PrnaConfig {
                    processors: procs,
                    policy: Policy::Greedy,
                    backend: Backend::WAVEFRONT,
                    ..PrnaConfig::default()
                },
            );
            assert_eq!(out.score, reference.score, "{name} p{procs}");
            assert_eq!(out.memo, reference.memo, "{name} p{procs}");
        }
    }
}

#[test]
fn prna_timings_partition_total() {
    let s = generate::worst_case_nested(60);
    let out = prna(
        &s,
        &s,
        &PrnaConfig {
            processors: 2,
            policy: Policy::Greedy,
            backend: Backend::WORKER_POOL,
            ..PrnaConfig::default()
        },
    );
    assert!(out.total() >= out.stage_one);
    assert!(out.total() >= out.preprocessing + out.stage_two);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_parallel_equals_sequential(seed1 in 0u64..999, seed2 in 0u64..999,
                                       len in 12u32..64, procs in 1u32..7) {
        let s1 = generate::random_structure(len, 1.0, seed1);
        let s2 = generate::random_structure(len, 0.7, seed2);
        let reference = srna2::run(&s1, &s2);
        for backend in Backend::ALL {
            let out = prna(&s1, &s2, &PrnaConfig {
                processors: procs,
                policy: Policy::Greedy,
                backend,
                ..PrnaConfig::default()
            });
            prop_assert_eq!(out.score, reference.score);
            prop_assert_eq!(&out.memo, &reference.memo);
        }
    }

    #[test]
    fn prop_wavefront_bit_identical_to_srna2(seed1 in 0u64..999, seed2 in 0u64..999,
                                             len in 12u32..72, procs in 1u32..9) {
        let s1 = generate::random_structure(len, 0.9, seed1);
        let s2 = generate::random_structure(len, 0.6, seed2);
        let reference = srna2::run(&s1, &s2);
        let out = prna(&s1, &s2, &PrnaConfig {
            processors: procs,
            policy: Policy::Greedy,
            backend: Backend::WAVEFRONT,
            ..PrnaConfig::default()
        });
        prop_assert_eq!(out.score, reference.score);
        prop_assert_eq!(&out.memo, &reference.memo);
    }
}

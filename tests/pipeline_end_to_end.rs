//! End-to-end pipeline: generate realistic structures → serialize →
//! parse back → compare (sequentially and in parallel) → trace → verify.
//! This is the full downstream-user workflow in one test.

use load_balance::Policy;
use mcos_core::{srna2, traceback, verify};
use mcos_parallel::{prna, Backend, PrnaConfig};
use rna_structure::formats::{bpseq, dot_bracket};
use rna_structure::{generate, stats};

#[test]
fn rrna_scale_pipeline() {
    // Quarter-scale versions of the paper's Table II inputs.
    let cfg1 = generate::RrnaConfig {
        len: 520,
        arcs: 90,
        mean_stem: 7,
        nest_bias: 0.55,
    };
    let cfg2 = generate::RrnaConfig {
        len: 560,
        arcs: 140,
        mean_stem: 7,
        nest_bias: 0.55,
    };
    let s1 = generate::rrna_like(&cfg1, 0xF47585);
    let s2 = generate::rrna_like(&cfg2, 0xF48228);

    // Generated structures look like rRNA: many stems, moderate depth.
    for s in [&s1, &s2] {
        let st = stats::stats(s);
        assert!(st.stems >= 8, "rRNA-like structures have many stems");
        assert!(st.max_depth >= 5);
        assert!(st.max_depth < st.arcs, "not one giant nest");
    }

    // Serialize through BPSEQ (the rRNA database format) and recover.
    let rec1 = bpseq::BpseqRecord {
        sequence: generate::sequence_for(&s1, 1),
        structure: s1.clone(),
    };
    let s1_back = bpseq::parse(&bpseq::to_string(&rec1)).unwrap().structure;
    assert_eq!(s1_back, s1);

    // Sequential comparison.
    let seq = srna2::run(&s1, &s2);
    assert!(seq.score > 0, "related generators share structure");
    assert!(seq.score <= s1.num_arcs().min(s2.num_arcs()));

    // Parallel comparison agrees bit-for-bit.
    let par = prna(
        &s1,
        &s2,
        &PrnaConfig {
            processors: 3,
            policy: Policy::Greedy,
            backend: Backend::MPI_SIM,
            ..PrnaConfig::default()
        },
    );
    assert_eq!(par.score, seq.score);
    assert_eq!(par.memo, seq.memo);

    // Traceback from the parallel run's memo is valid and optimal.
    let p1 = mcos_core::preprocess::Preprocessed::build(&s1);
    let p2 = mcos_core::preprocess::Preprocessed::build(&s2);
    let mapping = traceback::traceback_with(&p1, &p2, &par.memo);
    assert_eq!(mapping.len() as u32, seq.score);
    verify::check_mapping(&s1, &s2, &mapping.pairs).expect("valid mapping");
}

#[test]
fn worst_case_pipeline_through_dot_bracket() {
    let s = generate::worst_case_nested(64);
    let text = dot_bracket::to_string(&s);
    assert_eq!(text.matches('(').count(), 64);
    let back = dot_bracket::parse(&text).unwrap();
    let out = srna2::run(&back, &back);
    assert_eq!(out.score, 64);
    // Table III property at test scale: stage one dominates.
    let (_, one, _) = out.timings.percentages();
    assert!(one > 80.0, "stage one was only {one:.1}%");
}

#[test]
fn stage_percentages_shift_toward_stage_one_with_size() {
    // The Table III trend: as input grows, stage one's share rises.
    let small = srna2::run(
        &generate::worst_case_nested(20),
        &generate::worst_case_nested(20),
    );
    let large = srna2::run(
        &generate::worst_case_nested(120),
        &generate::worst_case_nested(120),
    );
    let (_, one_small, _) = small.timings.percentages();
    let (_, one_large, _) = large.timings.percentages();
    assert!(
        one_large >= one_small,
        "stage one share should grow: {one_small:.2}% -> {one_large:.2}%"
    );
}

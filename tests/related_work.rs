//! The related-work parallel schemes (manager–worker, shared-memo
//! randomized top-down) must agree with SRNA2 everywhere, and their
//! characteristic overheads must behave as the paper describes.

use mcos_core::srna2;
use mcos_integration::test_structures;
use mcos_parallel::{parallel_top_down, prna_manager_worker};
use proptest::prelude::*;
use rna_structure::generate;

#[test]
fn manager_worker_battery() {
    for (name, s) in test_structures() {
        let reference = srna2::run(&s, &s);
        for ranks in [2u32, 4] {
            let out = prna_manager_worker(&s, &s, ranks);
            assert_eq!(out.score, reference.score, "{name} ranks {ranks}");
            assert_eq!(out.memo, reference.memo, "{name} ranks {ranks}");
        }
    }
}

#[test]
fn shared_topdown_battery() {
    for (name, s) in test_structures() {
        let reference = srna2::run(&s, &s).score;
        for threads in [1u32, 3] {
            let out = parallel_top_down(&s, &s, threads, 42);
            assert_eq!(out.score, reference, "{name} threads {threads}");
        }
    }
}

#[test]
fn shared_topdown_work_accounting_invariants() {
    let s = generate::worst_case_nested(30);
    for threads in [1u32, 2, 4, 6] {
        let out = parallel_top_down(&s, &s, threads, 99);
        // computed = distinct + duplicated, always.
        assert_eq!(
            out.computed_slices,
            out.distinct_slices + out.duplicated,
            "threads {threads}"
        );
        if threads == 1 {
            assert_eq!(out.duplicated, 0, "one thread cannot race itself");
        }
    }
}

#[test]
fn manager_worker_and_static_prna_agree() {
    use load_balance::Policy;
    use mcos_parallel::{prna, Backend, PrnaConfig};
    let s = generate::rrna_like(
        &generate::RrnaConfig {
            len: 300,
            arcs: 60,
            mean_stem: 6,
            nest_bias: 0.5,
        },
        17,
    );
    let mw = prna_manager_worker(&s, &s, 3);
    let st = prna(
        &s,
        &s,
        &PrnaConfig {
            processors: 3,
            policy: Policy::Greedy,
            backend: Backend::MPI_SIM,
            ..PrnaConfig::default()
        },
    );
    assert_eq!(mw.score, st.score);
    assert_eq!(mw.memo, st.memo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_related_schemes_agree(seed in 0u64..500, len in 12u32..48,
                                  ranks in 2u32..5, tdseed in 0u64..99) {
        let s1 = generate::random_structure(len, 1.0, seed);
        let s2 = generate::random_structure(len, 0.8, seed + 3);
        let reference = srna2::run(&s1, &s2).score;
        prop_assert_eq!(prna_manager_worker(&s1, &s2, ranks).score, reference);
        prop_assert_eq!(parallel_top_down(&s1, &s2, ranks, tdseed).score, reference);
    }
}

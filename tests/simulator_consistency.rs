//! The parallel-execution simulator must be consistent with the real
//! implementations it stands in for: same work accounting as the
//! algorithms, sequential-equals-P=1, speedups bounded by P, and the
//! Figure 8 shape properties.

use load_balance::Policy;
use mcos_bench::{prna_sim_for, prna_sim_from_preprocessed};
use mcos_core::{preprocess::Preprocessed, srna2, workload};
use par_sim::{CostModel, Scheduling};
use rna_structure::generate;

#[test]
fn grid_work_matches_real_counters() {
    // The simulator's stage-one grid total (minus per-slice overhead)
    // must equal the real algorithm's tabulated cell count for stage one.
    let s = generate::worst_case_nested(40);
    let p = Preprocessed::build(&s);
    let sim = prna_sim_from_preprocessed(&p, &p);
    let real = srna2::run(&s, &s);
    let slices = (p.num_arcs() as u64) * (p.num_arcs() as u64);
    let overhead = slices * workload::SLICE_OVERHEAD_CELLS;
    let stage_two_cells = slices; // parent slice covers every arc pair
    assert_eq!(
        sim.grid.total() - overhead,
        real.counters.cells - stage_two_cells,
    );
}

#[test]
fn one_processor_time_equals_sequential_estimate() {
    let s = generate::rrna_like(
        &generate::RrnaConfig {
            len: 400,
            arcs: 80,
            mean_stem: 6,
            nest_bias: 0.5,
        },
        4,
    );
    let sim = prna_sim_for(&s, &s);
    let model = CostModel::default();
    let out = sim.run(1, Scheduling::Static(Policy::Greedy), &model);
    let t1 = sim.sequential_seconds(&model);
    assert!((out.total_seconds - t1).abs() / t1 < 1e-12);
    assert_eq!(out.sync_seconds, 0.0);
}

#[test]
fn speedups_bounded_and_larger_problems_scale_further() {
    // The central Figure 8 shape claim: the 1600-arc curve dominates the
    // 800-arc curve (here scaled to 200/400 arcs to stay fast).
    let model = CostModel {
        seconds_per_cell: 5e-9,
        sync_alpha: 300e-6,
        sync_beta_per_elem: 50e-9,
        ..CostModel::default()
    };
    let procs = [1u32, 2, 4, 8, 16, 32, 64];
    let mut curves = Vec::new();
    for arcs in [200u32, 400] {
        let s = generate::worst_case_nested(arcs);
        let sim = prna_sim_for(&s, &s);
        let curve = sim.speedup_curve(&procs, Scheduling::Static(Policy::Greedy), &model);
        for &(p, sp) in &curve {
            assert!(sp <= p as f64 + 1e-9, "arcs {arcs}: s({p}) = {sp}");
            assert!(sp >= 0.9, "arcs {arcs}: s({p}) = {sp}");
        }
        curves.push(curve);
    }
    for (small, large) in curves[0].iter().zip(&curves[1]) {
        assert!(
            large.1 >= small.1 - 1e-9,
            "larger problem should scale at least as well: {small:?} vs {large:?}"
        );
    }
}

#[test]
fn greedy_close_to_lpt_on_worst_case() {
    // The paper's greedy choice is adequate: within a few percent of LPT
    // on the contrived worst case.
    let s = generate::worst_case_nested(300);
    let sim = prna_sim_for(&s, &s);
    let model = CostModel::default();
    for p in [8u32, 32, 64] {
        let g = sim
            .run(p, Scheduling::Static(Policy::Greedy), &model)
            .stage_one_seconds;
        let l = sim
            .run(p, Scheduling::Static(Policy::Lpt), &model)
            .stage_one_seconds;
        assert!(
            g <= l * 1.10,
            "p={p}: greedy {g} should be within 10% of LPT {l}"
        );
    }
}

#[test]
fn simulated_single_thread_time_tracks_reality() {
    // Calibrate on one size, predict another: the simulated sequential
    // time of a 2x larger worst case must land within 3x of the measured
    // time (debug-build noise tolerated; the point is order-of-magnitude
    // fidelity of the work model).
    let spc = mcos_bench::calibrate_seconds_per_cell(60);
    let s = generate::worst_case_nested(120);
    let sim = prna_sim_for(&s, &s);
    let model = CostModel {
        seconds_per_cell: spc,
        ..CostModel::default()
    };
    let predicted = sim.sequential_seconds(&model);
    let (out, measured) = mcos_bench::time(|| srna2::run(&s, &s));
    assert_eq!(out.score, 120);
    let measured = measured.as_secs_f64();
    let ratio = predicted / measured;
    assert!(
        (0.33..3.0).contains(&ratio),
        "predicted {predicted:.4}s vs measured {measured:.4}s (ratio {ratio:.2})"
    );
}

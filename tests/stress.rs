//! Large-input stress tests, `#[ignore]`d by default (run with
//! `cargo test -p mcos-integration --release -- --ignored`).
//!
//! These exercise the full stack at experiment scale: they are too slow
//! for the default debug-mode suite but catch capacity bugs (overflow,
//! excessive allocation, stack depth) the small tests cannot.

use load_balance::Policy;
use mcos_core::{srna1, srna2, traceback, verify};
use mcos_parallel::{prna, Backend, PrnaConfig};
use rna_structure::generate;

#[test]
#[ignore = "minutes of compute; run explicitly in release mode"]
fn worst_case_400_all_backends() {
    let s = generate::worst_case_nested(400);
    let reference = srna2::run(&s, &s);
    assert_eq!(reference.score, 400);
    for backend in Backend::ALL {
        let out = prna(
            &s,
            &s,
            &PrnaConfig {
                processors: 4,
                policy: Policy::Greedy,
                backend,
                ..PrnaConfig::default()
            },
        );
        assert_eq!(out.score, 400, "{}", backend.name());
        assert_eq!(out.memo, reference.memo, "{}", backend.name());
    }
}

#[test]
#[ignore = "minutes of compute; run explicitly in release mode"]
fn backend_equivalence_at_scale() {
    // Shapes where the row and wavefront schedules diverge strongly, at a
    // size where scheduling bugs (a read that sneaks ahead of its level)
    // would actually get the chance to race: every backend must agree
    // with SRNA2 bit-for-bit at 8 threads.
    let inputs = [
        generate::hairpin_chain(80, 5, 2), // 400 arcs, 5 levels
        generate::skewed_groups(10, 2, 6), // strong per-row imbalance
    ];
    for s in &inputs {
        let reference = srna2::run(s, s);
        for backend in Backend::ALL {
            let out = prna(
                s,
                s,
                &PrnaConfig {
                    processors: 8,
                    policy: Policy::Lpt,
                    backend,
                    ..PrnaConfig::default()
                },
            );
            assert_eq!(out.score, reference.score, "{}", backend.name());
            assert_eq!(out.memo, reference.memo, "{}", backend.name());
        }
    }
}

#[test]
#[ignore = "minutes of compute; run explicitly in release mode"]
fn paper_scale_rrna_self_comparison() {
    // The Table II inputs at full size.
    let fungus = generate::rrna_like(&generate::RrnaConfig::fungus(), 0xF47585);
    let out1 = srna1::run(&fungus, &fungus);
    let out2 = srna2::run(&fungus, &fungus);
    assert_eq!(out1.score, 721);
    assert_eq!(out2.score, 721);
    // Both algorithms perform an exact tabulation: each child slice once
    // plus one parent slice — identical cell counts.
    assert_eq!(out1.counters.cells, out2.counters.cells);
}

#[test]
#[ignore = "minutes of compute; run explicitly in release mode"]
fn deep_recursion_traceback_at_scale() {
    // 1000 nested arcs: traceback recursion depth equals the nesting
    // depth; this guards against stack regressions.
    let s = generate::worst_case_nested(1000);
    let m = traceback::traceback(&s, &s);
    assert_eq!(m.len(), 1000);
    verify::check_mapping(&s, &s, &m.pairs).unwrap();
}

#[test]
#[ignore = "minutes of compute; run explicitly in release mode"]
fn cross_comparison_of_full_size_rrna() {
    let fungus = generate::rrna_like(&generate::RrnaConfig::fungus(), 0xF47585);
    let malaria = generate::rrna_like(&generate::RrnaConfig::malaria(), 0xF48228);
    let out = srna2::run(&fungus, &malaria);
    assert!(out.score > 0);
    assert!(out.score <= 721);
    let m = traceback::traceback(&fungus, &malaria);
    assert_eq!(m.len() as u32, out.score);
    verify::check_mapping(&fungus, &malaria, &m.pairs).unwrap();
}

//! The traceback must always produce a mapping that (a) has exactly
//! score-many pairs and (b) passes the independent first-principles
//! verifier; on tiny inputs the score must equal exhaustive brute force.

use mcos_core::{mcos_score, traceback, verify};
use mcos_integration::test_structures;
use proptest::prelude::*;
use rna_structure::generate;

#[test]
fn battery_tracebacks_are_valid_and_score_sized() {
    let battery = test_structures();
    for w in battery.windows(2) {
        let (n1, s1) = &w[0];
        let (n2, s2) = &w[1];
        let score = mcos_score(s1, s2);
        let m = traceback::traceback(s1, s2);
        assert_eq!(m.len() as u32, score, "{n1} vs {n2}");
        verify::check_mapping(s1, s2, &m.pairs).unwrap_or_else(|e| panic!("{n1} vs {n2}: {e}"));
    }
}

#[test]
fn brute_force_confirms_optimality_on_tiny_inputs() {
    for seed in 0..12 {
        let s1 = generate::random_structure(16, 1.0, seed);
        let s2 = generate::random_structure(14, 1.0, seed + 100);
        let dp = mcos_score(&s1, &s2);
        let bf = verify::brute_force_mcos(&s1, &s2);
        assert_eq!(dp, bf, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_traceback_valid(seed1 in 0u64..9999, seed2 in 0u64..9999,
                            len1 in 6u32..64, len2 in 6u32..64,
                            d in 0.3f64..1.2) {
        let s1 = generate::random_structure(len1, d, seed1);
        let s2 = generate::random_structure(len2, d, seed2);
        let m = traceback::traceback(&s1, &s2);
        prop_assert_eq!(m.len() as u32, mcos_score(&s1, &s2));
        prop_assert!(verify::check_mapping(&s1, &s2, &m.pairs).is_ok());
    }

    #[test]
    fn prop_tiny_brute_force(seed in 0u64..9999) {
        let s1 = generate::random_structure(12, 1.0, seed);
        let s2 = generate::random_structure(12, 1.0, seed.wrapping_add(7));
        prop_assert_eq!(mcos_score(&s1, &s2), verify::brute_force_mcos(&s1, &s2));
    }

    #[test]
    fn prop_mutated_mapping_is_caught(seed in 0u64..9999) {
        // Corrupting a non-trivial valid mapping must fail verification
        // in at least one of the standard corruption modes.
        let s1 = generate::random_structure(40, 1.0, seed);
        let s2 = generate::random_structure(40, 1.0, seed.wrapping_add(1));
        let m = traceback::traceback(&s1, &s2);
        prop_assume!(m.pairs.len() >= 2);
        // Mode 1: duplicate a pair's S1 arc.
        let mut dup = m.pairs.clone();
        let stolen = dup[0].0;
        dup[1].0 = stolen;
        prop_assert!(verify::check_mapping(&s1, &s2, &dup).is_err());
        // Mode 2: swap the S2 sides of the first two pairs (breaks order
        // or structure unless the arcs relate identically both ways —
        // then it is still a valid mapping, so only check mode 1 strictly
        // and mode 2 opportunistically).
        let mut swapped = m.pairs.clone();
        swapped[0].1 = m.pairs[1].1;
        swapped[1].1 = m.pairs[0].1;
        if verify::check_mapping(&s1, &s2, &swapped).is_ok() {
            // A symmetric situation; both mappings must then have the
            // same size and stay within the optimum.
            prop_assert!(swapped.len() as u32 <= mcos_score(&s1, &s2));
        }
    }
}

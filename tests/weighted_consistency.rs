//! Cross-module consistency of the weighted (Bafna-style) model against
//! plain MCOS and the verifier.

use mcos_core::weighted::{self, ArcWeight, SequenceWeight, Uniform, WeightMatrix};
use mcos_core::{mcos_score, preprocess::Preprocessed, srna2, traceback, verify};
use mcos_integration::test_structures;
use proptest::prelude::*;
use rna_structure::generate;

#[test]
fn uniform_weight_reproduces_mcos_on_battery() {
    let battery = test_structures();
    for w in battery.windows(2) {
        let (n1, s1) = &w[0];
        let (n2, s2) = &w[1];
        assert_eq!(
            weighted::run(s1, s2, &Uniform(1)).score,
            mcos_score(s1, s2),
            "{n1} vs {n2}"
        );
    }
}

#[test]
fn uniform_scaling_multiplies_scores() {
    // With w ≡ k every optimal MCOS mapping is optimal for the weighted
    // problem, so the weighted optimum is exactly k * MCOS.
    for seed in 0..10 {
        let s1 = generate::random_structure(48, 0.9, seed);
        let s2 = generate::random_structure(40, 0.9, seed + 77);
        let base = mcos_score(&s1, &s2);
        for k in [2u32, 5] {
            assert_eq!(
                weighted::run(&s1, &s2, &Uniform(k)).score,
                k * base,
                "seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn weighted_traceback_is_valid_and_accounts_for_score() {
    for seed in 0..8 {
        let s1 = generate::random_structure(52, 1.0, seed);
        let s2 = generate::random_structure(44, 0.8, seed + 5);
        let p1 = Preprocessed::build(&s1);
        let p2 = Preprocessed::build(&s2);
        let w = WeightMatrix::from_fn(s1.num_arcs(), s2.num_arcs(), |a, b| (a * 3 + b) % 7 + 1);
        let out = weighted::run_preprocessed(&p1, &p2, &w);
        let m = traceback::traceback_weighted(&p1, &p2, &out.memo, &w);
        verify::check_mapping(&s1, &s2, &m.pairs).unwrap();
        let total: u32 = m.pairs.iter().map(|&(a, b)| w.weight(a, b)).sum();
        assert_eq!(total, out.score, "seed {seed}");
    }
}

#[test]
fn sequence_weight_bounds() {
    // With arc_match=1 and base_bonus=b, every pair weighs between 1 and
    // 1+2b, so the weighted score is sandwiched by MCOS multiples.
    for seed in 0..6 {
        let s1 = generate::random_structure(40, 1.0, seed);
        let s2 = generate::random_structure(40, 1.0, seed + 9);
        let q1 = generate::sequence_for(&s1, seed);
        let q2 = generate::sequence_for(&s2, seed + 1);
        let w = SequenceWeight::new(&s1, &q1, &s2, &q2, 1, 3);
        let weighted_score = weighted::run(&s1, &s2, &w).score;
        let plain = mcos_score(&s1, &s2);
        assert!(weighted_score >= plain, "seed {seed}");
        assert!(weighted_score <= plain * 7, "seed {seed}");
    }
}

#[test]
fn weighted_memo_uniform_matches_srna2_memo() {
    let s = generate::worst_case_nested(15);
    let p = Preprocessed::build(&s);
    assert_eq!(
        weighted::run_preprocessed(&p, &p, &Uniform(1)).memo,
        srna2::run_preprocessed(&p, &p).memo
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_weighted_monotone_in_weights(seed in 0u64..999, len in 10u32..40, bump in 1u32..8) {
        let s1 = generate::random_structure(len, 1.0, seed);
        let s2 = generate::random_structure(len, 0.9, seed + 1);
        prop_assume!(s1.num_arcs() > 0 && s2.num_arcs() > 0);
        let base_w = WeightMatrix::from_fn(s1.num_arcs(), s2.num_arcs(), |a, b| (a + b) % 3 + 1);
        let bumped = WeightMatrix::from_fn(s1.num_arcs(), s2.num_arcs(), |a, b| {
            base_w.weight(a, b) + u32::from(a == 0 && b == 0) * bump
        });
        let lo = weighted::run(&s1, &s2, &base_w).score;
        let hi = weighted::run(&s1, &s2, &bumped).score;
        prop_assert!(hi >= lo);
        prop_assert!(hi <= lo + bump, "a single pair bump adds at most bump");
    }

    #[test]
    fn prop_weighted_bounded_by_max_weight_times_mcos(seed in 0u64..999, len in 10u32..36) {
        let s1 = generate::random_structure(len, 1.0, seed);
        let s2 = generate::random_structure(len, 1.0, seed + 2);
        let w = WeightMatrix::from_fn(s1.num_arcs().max(1), s2.num_arcs().max(1), |a, b| {
            (a * 5 + b * 11) % 9 + 1
        });
        let score = weighted::run(&s1, &s2, &w).score;
        let plain = mcos_score(&s1, &s2);
        prop_assert!(score <= plain * 9);
        prop_assert!(score >= plain, "min weight is 1");
    }
}
